(* Tests for the paper's statistical model (the `quality` library).

   Every numeric claim made in the running text of the paper appears
   here as a regression test. *)

let close ?(eps = 1e-9) expected actual =
  Alcotest.(check (float eps)) "close" expected actual

(* ------------------------ fault distribution ----------------------- *)

let test_eq1_normalizes () =
  List.iter
    (fun (y, n0) ->
      let d = Quality.Fault_distribution.create ~yield_:y ~n0 in
      close ~eps:1e-9 1.0 (Quality.Fault_distribution.total_mass d ~upto:400))
    [ (0.07, 8.0); (0.8, 2.0); (0.2, 10.0); (0.5, 1.0) ]

let test_eq1_p0_is_yield () =
  let d = Quality.Fault_distribution.create ~yield_:0.37 ~n0:5.0 in
  close ~eps:1e-12 0.37 (Quality.Fault_distribution.p d 0)

let test_eq2_average () =
  (* nav = (1-y) n0. *)
  let d = Quality.Fault_distribution.create ~yield_:0.07 ~n0:8.0 in
  close ~eps:1e-12 (0.93 *. 8.0) (Quality.Fault_distribution.average_faults d);
  (* and it matches the explicit sum of n p(n). *)
  let sum = ref 0.0 in
  for n = 0 to 400 do
    sum := !sum +. (float_of_int n *. Quality.Fault_distribution.p d n)
  done;
  close ~eps:1e-9 (0.93 *. 8.0) !sum

let test_eq1_sampling () =
  let d = Quality.Fault_distribution.create ~yield_:0.3 ~n0:6.0 in
  let rng = Stats.Rng.create ~seed:606 () in
  let n = 20_000 in
  let zero = ref 0 and sum = ref 0 and defective = ref 0 in
  for _ = 1 to n do
    let faults = Quality.Fault_distribution.sample d rng in
    if faults = 0 then incr zero
    else begin
      incr defective;
      sum := !sum + faults
    end
  done;
  close ~eps:0.015 0.3 (float_of_int !zero /. float_of_int n);
  close ~eps:0.1 6.0 (float_of_int !sum /. float_of_int !defective)

let test_fault_distribution_validation () =
  Alcotest.(check bool) "n0 < 1 rejected" true
    (try
       ignore (Quality.Fault_distribution.create ~yield_:0.5 ~n0:0.5);
       false
     with Invalid_argument _ -> true)

(* ------------------------------ escape ------------------------------ *)

let test_q0_exact_equals_product_form () =
  (* A.1 as a product: prod_{i=0}^{n-1} (N-m-i)/(N-i). *)
  let total = 500 and faulty = 9 in
  List.iter
    (fun f ->
      let m = int_of_float (Float.round (f *. 500.0)) in
      let product = ref 1.0 in
      for i = 0 to faulty - 1 do
        product := !product *. float_of_int (total - m - i) /. float_of_int (total - i)
      done;
      close ~eps:1e-9 !product (Quality.Escape.q0_exact ~total ~faulty ~coverage:f))
    [ 0.1; 0.3; 0.5; 0.7; 0.9 ]

let test_q0_approximation_quality () =
  (* Paper: for n <= 4 all three forms agree; A.2 coincides with exact
     even for large n; A.3's error is small but noticeable. *)
  let total = 1000 in
  List.iter
    (fun f ->
      for n = 1 to 4 do
        let exact = Quality.Escape.q0_exact ~total ~faulty:n ~coverage:f in
        close ~eps:(1e-3 *. exact) exact
          (Quality.Escape.q0_second_order ~total ~faulty:n ~coverage:f);
        close ~eps:(0.02 *. exact) exact (Quality.Escape.q0_simple ~faulty:n ~coverage:f)
      done;
      (* Large n: A.2 still tracks exactly; A.3 visibly off but close. *)
      let exact = Quality.Escape.q0_exact ~total ~faulty:32 ~coverage:f in
      let a2 = Quality.Escape.q0_second_order ~total ~faulty:32 ~coverage:f in
      let a3 = Quality.Escape.q0_simple ~faulty:32 ~coverage:f in
      if exact > 1e-12 then begin
        Alcotest.(check bool) "A.2 within 2%" true (abs_float (a2 /. exact -. 1.0) < 0.02);
        (* n = 32 is far outside A.3's validity bound n² << N(1-f)/f, so
           only a coarse factor-of-two agreement can be asked for. *)
        Alcotest.(check bool) "A.3 within 2x" true (a3 /. exact < 2.0 && a3 /. exact > 0.5);
        Alcotest.(check bool) "A.2 beats A.3" true
          (abs_float (a2 -. exact) <= abs_float (a3 -. exact) +. 1e-15)
      end)
    [ 0.1; 0.3; 0.5 ]

let test_q0_boundaries () =
  close ~eps:1e-12 1.0 (Quality.Escape.q0_exact ~total:100 ~faulty:0 ~coverage:0.5);
  close ~eps:1e-12 0.0 (Quality.Escape.q0_exact ~total:100 ~faulty:5 ~coverage:1.0);
  close ~eps:1e-12 1.0 (Quality.Escape.q0_exact ~total:100 ~faulty:5 ~coverage:0.0);
  close ~eps:1e-12 1.0 (Quality.Escape.q0_simple ~faulty:0 ~coverage:0.9)

let test_qk_is_hypergeometric_mode () =
  (* Σ_k qk = 1 and the mean is n·f. *)
  let total = 200 and faulty = 12 and covered = 80 in
  let sum = ref 0.0 and mean = ref 0.0 in
  for k = 0 to faulty do
    let q = Quality.Escape.qk ~total ~faulty ~covered k in
    sum := !sum +. q;
    mean := !mean +. (float_of_int k *. q)
  done;
  close ~eps:1e-9 1.0 !sum;
  close ~eps:1e-9 (12.0 *. 80.0 /. 200.0) !mean

let test_q0_validity_bound () =
  let b = Quality.Escape.q0_validity_bound ~total:1000 ~coverage:0.5 in
  close ~eps:1e-9 (sqrt 1000.0) b;
  Alcotest.(check bool) "infinite at f=0" true
    (Quality.Escape.q0_validity_bound ~total:1000 ~coverage:0.0 = infinity)

(* ------------------------------ reject ------------------------------ *)

let test_eq7_closed_form_values () =
  (* Ybg(f) = (1-f)(1-y)e^{-(n0-1)f}. *)
  close ~eps:1e-12
    (0.5 *. 0.93 *. exp (-3.5))
    (Quality.Reject.ybg ~yield_:0.07 ~n0:8.0 0.5)

let test_eq6_exact_matches_eq7 () =
  List.iter
    (fun (y, n0) ->
      List.iter
        (fun f ->
          let closed = Quality.Reject.ybg ~yield_:y ~n0 f in
          let exact = Quality.Reject.ybg_exact ~total:5000 ~yield_:y ~n0 f in
          Alcotest.(check bool)
            (Printf.sprintf "y=%g n0=%g f=%g" y n0 f)
            true
            (abs_float (closed -. exact) < 0.002))
        [ 0.0; 0.2; 0.5; 0.8; 0.95 ])
    [ (0.07, 8.0); (0.8, 2.0); (0.2, 10.0) ]

let test_eq8_boundaries_and_monotonicity () =
  let y = 0.3 and n0 = 5.0 in
  close ~eps:1e-12 (1.0 -. y) (Quality.Reject.reject_rate ~yield_:y ~n0 0.0);
  close ~eps:1e-12 0.0 (Quality.Reject.reject_rate ~yield_:y ~n0 1.0);
  let prev = ref infinity in
  for i = 0 to 100 do
    let f = float_of_int i /. 100.0 in
    let r = Quality.Reject.reject_rate ~yield_:y ~n0 f in
    Alcotest.(check bool) "decreasing" true (r <= !prev +. 1e-12);
    prev := r
  done

let test_eq9_identity () =
  (* P(f) + y + Ybg(f) = 1: every chip is either rejected, truly good,
     or a bad escape. *)
  List.iter
    (fun f ->
      let y = 0.07 and n0 = 8.0 in
      close ~eps:1e-12 1.0
        (Quality.Reject.p_reject ~yield_:y ~n0 f
        +. y
        +. Quality.Reject.ybg ~yield_:y ~n0 f))
    [ 0.0; 0.1; 0.5; 0.9; 1.0 ]

let test_eq10_slope () =
  let y = 0.07 and n0 = 8.0 in
  close ~eps:1e-12 (0.93 *. 8.0) (Quality.Reject.initial_slope ~yield_:y ~n0);
  (* Numeric derivative of P at 0 agrees. *)
  let h = 1e-7 in
  let numeric = Quality.Reject.p_reject ~yield_:y ~n0 h /. h in
  close ~eps:1e-4 (Quality.Reject.initial_slope ~yield_:y ~n0) numeric;
  (* And the analytic slope function at arbitrary f. *)
  let f0 = 0.3 in
  let numeric =
    (Quality.Reject.p_reject ~yield_:y ~n0 (f0 +. h)
    -. Quality.Reject.p_reject ~yield_:y ~n0 (f0 -. h))
    /. (2.0 *. h)
  in
  close ~eps:1e-4 (Quality.Reject.p_reject_slope ~yield_:y ~n0 f0) numeric

let test_eq11_inverts_eq8 () =
  (* yield_for(reject, n0, f) returns the y making r(f) = reject. *)
  List.iter
    (fun (reject, n0, f) ->
      let y = Quality.Reject.yield_for ~reject ~n0 f in
      close ~eps:1e-10 reject (Quality.Reject.reject_rate ~yield_:y ~n0 f))
    [ (0.01, 8.0, 0.8); (0.001, 2.0, 0.95); (0.005, 10.0, 0.4) ]

let test_reject_band () =
  (* reject_rate is decreasing in f, so the band endpoints swap: the
     pessimistic reject rate comes from the optimistic coverage edge. *)
  let y = 0.07 and n0 = 8.0 in
  let r_lo, r_hi = Quality.Reject.reject_band ~yield_:y ~n0 (0.6, 0.9) in
  close ~eps:1e-12 (Quality.Reject.reject_rate ~yield_:y ~n0 0.9) r_lo;
  close ~eps:1e-12 (Quality.Reject.reject_rate ~yield_:y ~n0 0.6) r_hi;
  Alcotest.(check bool) "band ordered" true (r_lo <= r_hi);
  (* A point band collapses to the point reject rate. *)
  let r_lo, r_hi = Quality.Reject.reject_band ~yield_:y ~n0 (0.5, 0.5) in
  close ~eps:1e-12 r_lo r_hi;
  (* Inverted coverage bands are a caller bug, not a clamp case. *)
  Alcotest.(check bool) "inverted band rejected" true
    (try
       ignore (Quality.Reject.reject_band ~yield_:y ~n0 (0.9, 0.6));
       false
     with Invalid_argument _ -> true)

(* --------------------------- requirement ---------------------------- *)

let test_required_coverage_is_root () =
  List.iter
    (fun (y, n0, reject) ->
      match Quality.Requirement.required_coverage ~yield_:y ~n0 ~reject with
      | Some f when f > 0.0 ->
        close ~eps:1e-7 reject (Quality.Reject.reject_rate ~yield_:y ~n0 f)
      | Some _ ->
        Alcotest.(check bool) "already satisfied" true
          (Quality.Reject.reject_rate ~yield_:y ~n0 0.0 <= reject)
      | None -> Alcotest.fail "positive reject is always reachable")
    [ (0.07, 8.0, 0.001); (0.8, 2.0, 0.005); (0.2, 10.0, 0.01); (0.999, 3.0, 0.01) ]

let test_required_coverage_zero_case () =
  (* Yield 0.999: untested reject rate 0.001 <= 0.01. *)
  Alcotest.(check bool) "no testing needed" true
    (Quality.Requirement.required_coverage ~yield_:0.999 ~n0:5.0 ~reject:0.01
    = Some 0.0)

let test_paper_requirement_checkpoints () =
  List.iter
    (fun cp ->
      match
        Quality.Requirement.required_coverage ~yield_:cp.Experiments.Paper_data.yield_
          ~n0:cp.Experiments.Paper_data.n0 ~reject:cp.Experiments.Paper_data.reject
      with
      | Some f ->
        Alcotest.(check bool)
          (Printf.sprintf "%s y=%g n0=%g" cp.Experiments.Paper_data.figure
             cp.Experiments.Paper_data.yield_ cp.Experiments.Paper_data.n0)
          true
          (abs_float (f -. cp.Experiments.Paper_data.coverage)
           <= cp.Experiments.Paper_data.tolerance)
      | None -> Alcotest.fail "unreachable checkpoint")
    Experiments.Paper_data.requirement_checkpoints

let test_requirement_monotone_in_n0 () =
  (* Higher n0 -> lower requirement (the paper's core message). *)
  let curve =
    Quality.Requirement.sensitivity_to_n0 ~yield_:0.2 ~reject:0.005
      ~n0_values:(Array.init 12 (fun i -> float_of_int (i + 1)))
  in
  Array.iteri
    (fun i (_, f) ->
      if i > 0 then
        Alcotest.(check bool) "decreasing in n0" true (f <= snd curve.(i - 1) +. 1e-9))
    curve

let test_requirement_monotone_in_yield () =
  let curve =
    Quality.Requirement.coverage_versus_yield ~reject:0.005 ~n0:6.0
      ~yields:(Array.init 19 (fun i -> 0.05 *. float_of_int (i + 1)))
  in
  Array.iteri
    (fun i (_, f) ->
      if i > 0 then
        Alcotest.(check bool) "decreasing in yield" true (f <= snd curve.(i - 1) +. 1e-9))
    curve

(* ----------------------------- wadsack ------------------------------ *)

let test_wadsack_paper_numbers () =
  (* Section 7: r=0.01,y=0.07 -> f=99%; r=0.001 -> 99.9%. *)
  List.iter
    (fun (y, reject, expected) ->
      match Quality.Wadsack.required_coverage ~yield_:y ~reject with
      | Some f -> close ~eps:0.001 expected f
      | None -> Alcotest.fail "reachable")
    Experiments.Paper_data.wadsack_checkpoints

let test_wadsack_always_more_pessimistic () =
  (* For n0 > 1 the Wadsack requirement exceeds ours. *)
  List.iter
    (fun (y, n0, reject) ->
      let ours =
        match Quality.Requirement.required_coverage ~yield_:y ~n0 ~reject with
        | Some f -> f
        | None -> 1.0
      in
      let theirs =
        match Quality.Wadsack.required_coverage ~yield_:y ~reject with
        | Some f -> f
        | None -> 1.0
      in
      Alcotest.(check bool) "wadsack >= ours" true (theirs >= ours -. 1e-9))
    [ (0.07, 8.0, 0.01); (0.2, 4.0, 0.005); (0.5, 2.0, 0.001) ]

let test_wadsack_equals_model_at_n0_one () =
  (* With n0 = 1 (one fault per bad chip) the two models differ only by
     the normalization to shipped chips: Wadsack's r is per manufactured
     chip, ours per passing chip, so exactly
     ours = wadsack / (y + wadsack). *)
  let y = 0.5 in
  List.iter
    (fun f ->
      let ours = Quality.Reject.reject_rate ~yield_:y ~n0:1.0 f in
      let theirs = Quality.Wadsack.reject_rate ~yield_:y f in
      close ~eps:1e-12 (theirs /. (y +. theirs)) ours)
    [ 0.3; 0.6; 0.9; 0.95; 0.99 ]

(* ----------------------------- estimate ----------------------------- *)

let synthetic_points ~yield_ ~n0 =
  List.map
    (fun f ->
      { Quality.Estimate.coverage = f;
        fraction_failed = Quality.Reject.p_reject ~yield_ ~n0 f })
    [ 0.05; 0.1; 0.15; 0.2; 0.3; 0.4; 0.5; 0.65 ]

let test_fit_recovers_exact_data () =
  List.iter
    (fun n0 ->
      let points = synthetic_points ~yield_:0.07 ~n0 in
      let n0_hat, residual = Quality.Estimate.fit_n0 ~yield_:0.07 points in
      close ~eps:0.02 n0 n0_hat;
      Alcotest.(check bool) "tiny residual" true (residual < 1e-9))
    [ 2.0; 5.5; 8.0; 12.0 ]

let test_slope_estimator_on_exact_data () =
  (* P is concave, so a secant through (0.05, P(0.05)) under-estimates
     P'(0): the estimate is biased low (the "safe" direction the paper
     notes) but lands within ~20 % of the truth. *)
  let n0 = 8.0 in
  let points = synthetic_points ~yield_:0.07 ~n0 in
  let estimate = Quality.Estimate.slope_n0 ~yield_:0.07 points in
  Alcotest.(check bool) "biased low" true (estimate <= n0);
  Alcotest.(check bool) "within 25%" true (abs_float (estimate -. n0) /. n0 < 0.25)

let test_paper_table1_fit () =
  (* The automated fit must land on the paper's chosen n0 = 8 (+- 1). *)
  let points =
    List.map
      (fun (f, frac) -> { Quality.Estimate.coverage = f; fraction_failed = frac })
      Experiments.Paper_data.table1_points
  in
  let n0_hat, _ = Quality.Estimate.fit_n0 ~yield_:0.07 points in
  Alcotest.(check bool)
    (Printf.sprintf "fit %.2f within 8 +- 1" n0_hat)
    true
    (abs_float (n0_hat -. 8.0) <= 1.0)

let test_paper_table1_slope () =
  (* Paper: P'(0) = 0.41/0.05 = 8.2; n0 = 8.2/0.93 = 8.8. *)
  let points =
    List.map
      (fun (f, frac) -> { Quality.Estimate.coverage = f; fraction_failed = frac })
      Experiments.Paper_data.table1_points
  in
  close ~eps:1e-9 8.2 (Quality.Estimate.slope_nav ~points_used:1 points);
  close ~eps:0.02 8.817 (Quality.Estimate.slope_n0 ~points_used:1 ~yield_:0.07 points)

let test_joint_fit_identifiability () =
  (* With data reaching high coverage the joint fit recovers both
     parameters reasonably. *)
  let points =
    List.map
      (fun f ->
        { Quality.Estimate.coverage = f;
          fraction_failed = Quality.Reject.p_reject ~yield_:0.2 ~n0:6.0 f })
      [ 0.05; 0.1; 0.2; 0.3; 0.5; 0.7; 0.85; 0.95; 1.0 ]
  in
  let n0_hat, y_hat, _ = Quality.Estimate.fit_n0_and_yield points in
  Alcotest.(check bool) "yield recovered" true (abs_float (y_hat -. 0.2) < 0.05);
  Alcotest.(check bool) "n0 recovered" true (abs_float (n0_hat -. 6.0) < 1.5)

let test_joint_fit_saturated_curve () =
  (* Regression: a checkpoint failing at ~100 % used to collapse the
     yield grid onto the single candidate 0.0 (and evaluate
     [fit_n0 ~yield_:0.0]); the clamped grid must return a sane,
     finite estimate instead. *)
  let points =
    List.map
      (fun (f, frac) -> { Quality.Estimate.coverage = f; fraction_failed = frac })
      [ (0.3, 0.8); (0.6, 0.95); (0.9, 0.999); (1.0, 1.0) ]
  in
  let n0_hat, y_hat, residual = Quality.Estimate.fit_n0_and_yield points in
  Alcotest.(check bool) "n0 in search range" true (n0_hat >= 1.0 && n0_hat <= 100.0);
  Alcotest.(check bool) "yield clamped positive" true
    (y_hat >= 1e-4 && y_hat <= 0.01);
  Alcotest.(check bool) "residual finite" true (Float.is_finite residual)

let test_estimate_validation () =
  Alcotest.(check bool) "empty rejected" true
    (try
       ignore (Quality.Estimate.fit_n0 ~yield_:0.1 []);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad coverage rejected" true
    (try
       ignore
         (Quality.Estimate.fit_n0 ~yield_:0.1
            [ { Quality.Estimate.coverage = 1.5; fraction_failed = 0.5 } ]);
       false
     with Invalid_argument _ -> true)

let test_predicted_curve () =
  let curve =
    Quality.Estimate.predicted_curve ~yield_:0.07 ~n0:8.0
      ~coverages:[| 0.0; 0.5; 1.0 |]
  in
  match curve with
  | [ a; b; c ] ->
    close ~eps:1e-12 0.0 a.Quality.Estimate.fraction_failed;
    close ~eps:1e-12
      (Quality.Reject.p_reject ~yield_:0.07 ~n0:8.0 0.5)
      b.Quality.Estimate.fraction_failed;
    close ~eps:1e-12 0.93 c.Quality.Estimate.fraction_failed
  | _ -> Alcotest.fail "3 points"

(* -------------------------- williams-brown --------------------------- *)

let test_wb_formula_values () =
  (* The canonical textbook example: y = 0.5, f = 0.9 -> DL = 1 - 0.5^0.1. *)
  close ~eps:1e-12 (1.0 -. (0.5 ** 0.1))
    (Quality.Williams_brown.defect_level ~yield_:0.5 0.9)

let test_wb_boundaries () =
  close ~eps:1e-12 0.3 (Quality.Williams_brown.defect_level ~yield_:0.7 0.0);
  close ~eps:1e-12 0.0 (Quality.Williams_brown.defect_level ~yield_:0.7 1.0);
  close ~eps:1e-12 0.0 (Quality.Williams_brown.defect_level ~yield_:1.0 0.5)

let test_wb_required_coverage_inverts () =
  List.iter
    (fun (y, dl) ->
      match Quality.Williams_brown.required_coverage ~yield_:y ~defect_level:dl with
      | Some f when f > 0.0 ->
        close ~eps:1e-10 dl (Quality.Williams_brown.defect_level ~yield_:y f)
      | Some _ -> Alcotest.(check bool) "already met" true (1.0 -. y <= dl)
      | None -> Alcotest.fail "reachable")
    [ (0.07, 0.01); (0.5, 0.001); (0.9, 0.05); (0.995, 0.01) ]

let test_wb_between_wadsack_and_agrawal () =
  (* At the paper's example point both prior models demand near-perfect
     coverage, far above the Agrawal requirement; WB and Wadsack agree
     with each other to a fraction of a percent. *)
  let y = 0.07 and reject = 0.001 in
  let agrawal =
    match Quality.Requirement.required_coverage ~yield_:y ~n0:8.0 ~reject with
    | Some f -> f
    | None -> assert false
  in
  let wb =
    match Quality.Williams_brown.required_coverage ~yield_:y ~defect_level:reject with
    | Some f -> f
    | None -> assert false
  in
  let wadsack =
    match Quality.Wadsack.required_coverage ~yield_:y ~reject with
    | Some f -> f
    | None -> assert false
  in
  Alcotest.(check bool)
    (Printf.sprintf "agrawal %.4f far below wb %.4f ~ wadsack %.4f" agrawal wb wadsack)
    true
    (agrawal < wb -. 0.03 && agrawal < wadsack -. 0.03
    && abs_float (wb -. wadsack) < 0.005)

let test_wb_reconciles_with_agrawal_via_implied_n0 () =
  (* Feeding WB's implied defective-chip fault mean into the Agrawal
     model reproduces WB's defect level to within ~15 % relative over
     the midrange of f: the models share the same physics and differ
     only in the (1-f) escape prefactor and the shifted support. *)
  let y = 0.07 in
  let n0 = Quality.Williams_brown.implied_n0 ~yield_:y in
  Alcotest.(check bool) "implied n0 plausible" true (n0 > 2.0 && n0 < 3.5);
  List.iter
    (fun f ->
      let wb = Quality.Williams_brown.defect_level ~yield_:y f in
      let agrawal = Quality.Reject.reject_rate ~yield_:y ~n0 f in
      Alcotest.(check bool)
        (Printf.sprintf "f=%.2f wb=%.4f agrawal=%.4f" f wb agrawal)
        true
        (abs_float (agrawal /. wb -. 1.0) < 0.20))
    [ 0.3; 0.5; 0.7; 0.9 ]

let test_wb_monotone_decreasing () =
  let prev = ref 1.0 in
  for i = 0 to 100 do
    let f = float_of_int i /. 100.0 in
    let dl = Quality.Williams_brown.defect_level ~yield_:0.3 f in
    Alcotest.(check bool) "decreasing" true (dl <= !prev +. 1e-12);
    prev := dl
  done

(* ------------------------------ griffin ----------------------------- *)

let test_griffin_normalizes () =
  let g = Quality.Griffin.create ~yield_:0.07 ~shape:2.0 ~scale:3.5 in
  let sum = ref 0.0 in
  for n = 0 to 4000 do
    sum := !sum +. Quality.Griffin.p g n
  done;
  close ~eps:1e-6 1.0 !sum

let test_griffin_mean () =
  let g = Quality.Griffin.of_mean_dispersion ~yield_:0.07 ~n0:8.0 ~dispersion:2.0 in
  close ~eps:1e-12 8.0 (Quality.Griffin.mean_n0 g);
  (* Conditional mean from the pmf agrees. *)
  let sum = ref 0.0 and mass = ref 0.0 in
  for n = 1 to 4000 do
    let p = Quality.Griffin.p g n in
    sum := !sum +. (float_of_int n *. p);
    mass := !mass +. p
  done;
  close ~eps:1e-6 8.0 (!sum /. !mass)

let test_griffin_degenerates_to_base () =
  (* dispersion -> 1 recovers the fixed-n0 model. *)
  let g = Quality.Griffin.of_mean_dispersion ~yield_:0.07 ~n0:8.0 ~dispersion:1.0001 in
  List.iter
    (fun f ->
      close ~eps:1e-3
        (Quality.Reject.reject_rate ~yield_:0.07 ~n0:8.0 f)
        (Quality.Griffin.reject_rate g f))
    [ 0.1; 0.5; 0.9 ]

let test_griffin_dispersion_needs_more_coverage () =
  (* Heavier mixing -> heavier single-fault tail -> more coverage needed. *)
  let base =
    match Quality.Requirement.required_coverage ~yield_:0.07 ~n0:8.0 ~reject:0.001 with
    | Some f -> f
    | None -> assert false
  in
  List.iter
    (fun dispersion ->
      let g = Quality.Griffin.of_mean_dispersion ~yield_:0.07 ~n0:8.0 ~dispersion in
      match Quality.Griffin.required_coverage g ~reject:0.001 with
      | Some f -> Alcotest.(check bool) "mixed needs more" true (f >= base -. 1e-9)
      | None -> Alcotest.fail "reachable")
    [ 1.5; 2.0; 3.0 ]

let test_griffin_identity () =
  (* P + y + Ybg = 1 holds in the mixed model too. *)
  let g = Quality.Griffin.of_mean_dispersion ~yield_:0.2 ~n0:5.0 ~dispersion:2.5 in
  List.iter
    (fun f ->
      close ~eps:1e-12 1.0 (Quality.Griffin.p_reject g f +. 0.2 +. Quality.Griffin.ybg g f))
    [ 0.0; 0.3; 0.7; 1.0 ]

(* ----------------------------- economics ---------------------------- *)

let economics_model ~escape_cost =
  Quality.Economics.create ~yield_:0.07 ~n0:8.0 ~pattern_cost:1.0
    ~patterns_per_decade:50.0 ~escape_cost

let test_economics_costs () =
  let m = economics_model ~escape_cost:1000.0 in
  close ~eps:1e-9 0.0 (Quality.Economics.test_cost m 0.0);
  Alcotest.(check bool) "test cost increasing" true
    (Quality.Economics.test_cost m 0.9 > Quality.Economics.test_cost m 0.5);
  Alcotest.(check bool) "escape cost decreasing" true
    (Quality.Economics.escape_cost_per_chip m 0.9
     < Quality.Economics.escape_cost_per_chip m 0.5)

let test_economics_optimum_is_interior_minimum () =
  let m = economics_model ~escape_cost:5000.0 in
  let f_star = Quality.Economics.optimal_coverage m in
  Alcotest.(check bool) "interior" true (f_star > 0.0 && f_star < 1.0);
  let best = Quality.Economics.total_cost m f_star in
  List.iter
    (fun df ->
      let f = min 0.999 (max 0.0 (f_star +. df)) in
      Alcotest.(check bool) "local minimum" true
        (Quality.Economics.total_cost m f >= best -. 1e-9))
    [ -0.05; -0.01; 0.01; 0.05 ]

let test_economics_optimum_monotone_in_escape_cost () =
  let prev = ref 0.0 in
  List.iter
    (fun escape_cost ->
      let f = Quality.Economics.optimal_coverage (economics_model ~escape_cost) in
      Alcotest.(check bool) "more escape cost, more coverage" true (f >= !prev);
      prev := f)
    [ 10.0; 100.0; 1000.0; 10000.0 ]

let test_economics_sweep_shape () =
  let m = economics_model ~escape_cost:1000.0 in
  let rows = Quality.Economics.sweep m ~coverages:[| 0.1; 0.5; 0.9 |] in
  Array.iter
    (fun (f, test, escape, total) ->
      ignore f;
      close ~eps:1e-9 total (test +. escape))
    rows

let test_economics_study_rows () =
  let rows = Experiments.Economics_study.sweep ~ratios:[ 1.0; 100.0 ] () in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  match rows with
  | [ low; high ] ->
    Alcotest.(check bool) "higher ratio, higher optimum" true
      (high.Experiments.Economics_study.optimal_coverage
       > low.Experiments.Economics_study.optimal_coverage)
  | _ -> assert false

(* ------------------------- bootstrap estimate ------------------------ *)

let test_bootstrap_n0_interval_covers_truth () =
  (* Chips drawn from the exact Eq. 1 law; the bootstrap percentile
     interval for the mean-of-defective statistic should cover n0. *)
  let rng = Stats.Rng.create ~seed:2025 () in
  let d = Quality.Fault_distribution.create ~yield_:0.07 ~n0:8.0 in
  let chips = Array.init 300 (fun _ -> Quality.Fault_distribution.sample d rng) in
  let statistic sample =
    let defective = Array.to_list sample |> List.filter (fun n -> n > 0) in
    if defective = [] then invalid_arg "empty resample"
    else
      float_of_int (List.fold_left ( + ) 0 defective)
      /. float_of_int (List.length defective)
  in
  let distribution = Stats.Fit.bootstrap ~resamples:400 rng ~statistic chips in
  Alcotest.(check bool) "enough resamples survived" true
    (Array.length distribution > 350);
  let lo, hi = Stats.Fit.percentile_interval distribution ~level:0.95 in
  Alcotest.(check bool)
    (Printf.sprintf "interval [%.2f, %.2f] covers 8" lo hi)
    true
    (lo < 8.0 && 8.0 < hi && hi -. lo < 1.5)

(* ---------------------- Monte Carlo validation ---------------------- *)

(* Simulate the urn model directly: a chip with n faults escapes tests
   of coverage f iff every fault's detection threshold exceeds f.  The
   empirical bad-chips-passing rate must match Eq. 7 and the empirical
   shipped-reject rate Eq. 8, within Monte Carlo error. *)
let monte_carlo_escapes ~yield_ ~n0 ~coverage ~chips rng =
  let d = Quality.Fault_distribution.create ~yield_ ~n0 in
  let good = ref 0 and escapes = ref 0 in
  for _ = 1 to chips do
    let n = Quality.Fault_distribution.sample d rng in
    if n = 0 then incr good
    else begin
      let undetected = ref true in
      for _ = 1 to n do
        if Stats.Rng.uniform rng <= coverage then undetected := false
      done;
      if !undetected then incr escapes
    end
  done;
  (!good, !escapes)

let test_eq7_eq8_match_monte_carlo () =
  let rng = Stats.Rng.create ~seed:777 () in
  List.iter
    (fun (yield_, n0, coverage) ->
      let chips = 200_000 in
      let good, escapes = monte_carlo_escapes ~yield_ ~n0 ~coverage ~chips rng in
      let empirical_ybg = float_of_int escapes /. float_of_int chips in
      let predicted_ybg = Quality.Reject.ybg ~yield_ ~n0 coverage in
      (* 4-sigma binomial tolerance. *)
      let sigma = sqrt (predicted_ybg *. (1.0 -. predicted_ybg) /. float_of_int chips) in
      Alcotest.(check bool)
        (Printf.sprintf "Ybg y=%g n0=%g f=%g: %.5f vs %.5f" yield_ n0 coverage
           empirical_ybg predicted_ybg)
        true
        (abs_float (empirical_ybg -. predicted_ybg) < (4.0 *. sigma) +. 1e-4);
      let empirical_reject =
        float_of_int escapes /. float_of_int (good + escapes)
      in
      let predicted_reject = Quality.Reject.reject_rate ~yield_ ~n0 coverage in
      Alcotest.(check bool)
        (Printf.sprintf "r y=%g n0=%g f=%g: %.5f vs %.5f" yield_ n0 coverage
           empirical_reject predicted_reject)
        true
        (abs_float (empirical_reject -. predicted_reject)
         < (0.2 *. predicted_reject) +. 5e-4))
    [ (0.07, 8.0, 0.5); (0.07, 8.0, 0.8); (0.8, 2.0, 0.6); (0.2, 10.0, 0.4) ]

let test_p_reject_matches_monte_carlo () =
  (* Eq. 9 is the complementary count: fraction of all chips failing. *)
  let rng = Stats.Rng.create ~seed:778 () in
  let yield_ = 0.07 and n0 = 8.0 and coverage = 0.3 in
  let chips = 200_000 in
  let good, escapes = monte_carlo_escapes ~yield_ ~n0 ~coverage ~chips rng in
  let empirical_p =
    1.0 -. (float_of_int (good + escapes) /. float_of_int chips)
  in
  Alcotest.(check bool) "P(f) matches" true
    (abs_float (empirical_p -. Quality.Reject.p_reject ~yield_ ~n0 coverage) < 0.005)

(* ------------------------------ ndetect ------------------------------ *)

let test_ndetect_epsilon_zero_collapses () =
  (* epsilon = 0 is the paper: one detection screens perfectly, so every
     function must equal its Eq. 5/7/8 counterpart at the plain 1-detect
     coverage. *)
  let counts = [| 0; 1; 2; 5; 1; 0; 3 |] in
  let covered = 5.0 /. 7.0 in
  Alcotest.(check (float 1e-12)) "effective coverage = 1-detect coverage" covered
    (Quality.Ndetect.effective_coverage ~epsilon:0.0 counts);
  Alcotest.(check (float 1e-12)) "q0 = Escape.q0_simple"
    (Quality.Escape.q0_simple ~faulty:4 ~coverage:covered)
    (Quality.Ndetect.q0 ~epsilon:0.0 ~faulty:4 counts);
  Alcotest.(check (float 1e-12)) "ybg = Reject.ybg"
    (Quality.Reject.ybg ~yield_:0.07 ~n0:8.0 covered)
    (Quality.Ndetect.ybg ~epsilon:0.0 ~yield_:0.07 ~n0:8.0 counts);
  Alcotest.(check (float 1e-12)) "reject rate = Reject.reject_rate"
    (Quality.Reject.reject_rate ~yield_:0.07 ~n0:8.0 covered)
    (Quality.Ndetect.reject_rate ~epsilon:0.0 ~yield_:0.07 ~n0:8.0 counts)

let test_ndetect_fault_escape () =
  Alcotest.(check (float 1e-12)) "undetected always escapes" 1.0
    (Quality.Ndetect.fault_escape ~epsilon:0.3 0);
  Alcotest.(check (float 1e-12)) "undetected escapes even at eps = 0" 1.0
    (Quality.Ndetect.fault_escape ~epsilon:0.0 0);
  Alcotest.(check (float 1e-12)) "one detection leaves eps" 0.3
    (Quality.Ndetect.fault_escape ~epsilon:0.3 1);
  Alcotest.(check (float 1e-12)) "three detections leave eps^3" 0.027
    (Quality.Ndetect.fault_escape ~epsilon:0.3 3);
  let rejects f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "negative count rejected" true
    (rejects (fun () -> Quality.Ndetect.fault_escape ~epsilon:0.5 (-1)));
  Alcotest.(check bool) "epsilon > 1 rejected" true
    (rejects (fun () -> Quality.Ndetect.fault_escape ~epsilon:1.5 1));
  Alcotest.(check bool) "negative epsilon rejected" true
    (rejects (fun () -> Quality.Ndetect.effective_coverage ~epsilon:(-0.1) [| 1 |]))

let test_ndetect_monotone () =
  (* Deeper detection raises the effective coverage and so lowers the
     predicted reject rate; at equal 1-detect coverage, any positive
     epsilon predicts a worse reject rate than the paper. *)
  let base = [| 1; 1; 1; 1 |] and deep = [| 4; 4; 4; 4 |] in
  let f_base = Quality.Ndetect.effective_coverage ~epsilon:0.4 base in
  let f_deep = Quality.Ndetect.effective_coverage ~epsilon:0.4 deep in
  Alcotest.(check bool) "deeper detection raises f_eff" true (f_deep > f_base);
  Alcotest.(check bool) "and lowers the reject rate" true
    (Quality.Ndetect.reject_rate ~epsilon:0.4 ~yield_:0.07 ~n0:8.0 deep
    < Quality.Ndetect.reject_rate ~epsilon:0.4 ~yield_:0.07 ~n0:8.0 base);
  let partial = [| 1; 1; 1; 0 |] in
  Alcotest.(check bool) "positive epsilon is pessimistic vs the paper" true
    (Quality.Ndetect.reject_rate ~epsilon:0.4 ~yield_:0.07 ~n0:8.0 partial
    > Quality.Reject.reject_rate ~yield_:0.07 ~n0:8.0 0.75);
  Alcotest.(check (float 1e-12)) "empty universe" 0.0
    (Quality.Ndetect.effective_coverage ~epsilon:0.4 [||])

let qcheck_props =
  let open QCheck in
  [ Test.make ~count:300 ~name:"r(f) in [0, 1-y] and decreasing"
      (triple (float_range 0.01 0.99) (float_range 1.0 20.0) (float_range 0.0 0.99))
      (fun (y, n0, f) ->
        let r = Quality.Reject.reject_rate ~yield_:y ~n0 f in
        let r' = Quality.Reject.reject_rate ~yield_:y ~n0 (f +. 0.01) in
        r >= -1e-12 && r <= 1.0 -. y +. 1e-12 && r' <= r +. 1e-12);
    Test.make ~count:200 ~name:"required coverage solves to target"
      (triple (float_range 0.01 0.95) (float_range 1.0 15.0) (float_range 0.0005 0.05))
      (fun (y, n0, reject) ->
        match Quality.Requirement.required_coverage ~yield_:y ~n0 ~reject with
        | Some f when f > 0.0 ->
          abs_float (Quality.Reject.reject_rate ~yield_:y ~n0 f -. reject) < 1e-6
        | Some _ -> Quality.Reject.reject_rate ~yield_:y ~n0 0.0 <= reject +. 1e-12
        | None -> false);
    Test.make ~count:200 ~name:"q0 forms agree within A.3's validity bound"
      (pair (int_range 1 8) (float_range 0.05 0.7))
      (fun (n, f) ->
        let exact = Quality.Escape.q0_exact ~total:10_000 ~faulty:n ~coverage:f in
        let simple = Quality.Escape.q0_simple ~faulty:n ~coverage:f in
        exact <= 0.0 || abs_float (simple /. exact -. 1.0) < 0.01);
    Test.make ~count:100 ~name:"fit recovers n0 from exact curves"
      (pair (float_range 1.5 15.0) (float_range 0.02 0.6))
      (fun (n0, y) ->
        let points =
          List.map
            (fun f ->
              { Quality.Estimate.coverage = f;
                fraction_failed = Quality.Reject.p_reject ~yield_:y ~n0 f })
            [ 0.1; 0.2; 0.35; 0.5; 0.7 ]
        in
        let n0_hat, _ = Quality.Estimate.fit_n0 ~yield_:y points in
        abs_float (n0_hat -. n0) < 0.1) ]

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [ ( "quality.fault_distribution",
      [ tc "Eq.1 normalizes" test_eq1_normalizes;
        tc "p(0) = yield" test_eq1_p0_is_yield;
        tc "Eq.2 average" test_eq2_average;
        tc "sampling" test_eq1_sampling;
        tc "validation" test_fault_distribution_validation ] );
    ( "quality.escape",
      [ tc "A.1 = product form" test_q0_exact_equals_product_form;
        tc "approximation quality (Fig.6 claims)" test_q0_approximation_quality;
        tc "boundaries" test_q0_boundaries;
        tc "qk normalizes, mean nf" test_qk_is_hypergeometric_mode;
        tc "validity bound" test_q0_validity_bound ] );
    ( "quality.reject",
      [ tc "Eq.7 value" test_eq7_closed_form_values;
        tc "Eq.6 exact = Eq.7 closed" test_eq6_exact_matches_eq7;
        tc "Eq.8 boundaries + monotone" test_eq8_boundaries_and_monotonicity;
        tc "Eq.9 identity" test_eq9_identity;
        tc "Eq.10 slope" test_eq10_slope;
        tc "Eq.11 inverts Eq.8" test_eq11_inverts_eq8;
        tc "reject band from coverage band" test_reject_band ] );
    ( "quality.requirement",
      [ tc "solution is a root" test_required_coverage_is_root;
        tc "zero-coverage case" test_required_coverage_zero_case;
        tc "paper checkpoints (Figs. 1, 2, 4)" test_paper_requirement_checkpoints;
        tc "monotone in n0" test_requirement_monotone_in_n0;
        tc "monotone in yield" test_requirement_monotone_in_yield ] );
    ( "quality.wadsack",
      [ tc "paper Section 7 numbers" test_wadsack_paper_numbers;
        tc "always more pessimistic" test_wadsack_always_more_pessimistic;
        tc "agreement at n0 = 1, high f" test_wadsack_equals_model_at_n0_one ] );
    ( "quality.estimate",
      [ tc "fit recovers exact data" test_fit_recovers_exact_data;
        tc "slope estimator near truth" test_slope_estimator_on_exact_data;
        tc "paper Table 1 fit ~ 8" test_paper_table1_fit;
        tc "paper slope 8.2 / 8.8" test_paper_table1_slope;
        tc "joint fit identifiability" test_joint_fit_identifiability;
        tc "joint fit saturated curve" test_joint_fit_saturated_curve;
        tc "validation" test_estimate_validation;
        tc "predicted curve" test_predicted_curve ] );
    ( "quality.economics",
      [ tc "cost components" test_economics_costs;
        tc "optimum is interior minimum" test_economics_optimum_is_interior_minimum;
        tc "optimum monotone in escape cost" test_economics_optimum_monotone_in_escape_cost;
        tc "sweep rows consistent" test_economics_sweep_shape;
        tc "study rows" test_economics_study_rows;
        tc "bootstrap n0 interval" test_bootstrap_n0_interval_covers_truth ] );
    ( "quality.williams_brown",
      [ tc "formula values" test_wb_formula_values;
        tc "boundaries" test_wb_boundaries;
        tc "required coverage inverts" test_wb_required_coverage_inverts;
        tc "sits between Wadsack and Agrawal" test_wb_between_wadsack_and_agrawal;
        tc "reconciles via implied n0" test_wb_reconciles_with_agrawal_via_implied_n0;
        tc "monotone" test_wb_monotone_decreasing ] );
    ( "quality.griffin",
      [ tc "pmf normalizes" test_griffin_normalizes;
        tc "mean n0" test_griffin_mean;
        tc "degenerates to base model" test_griffin_degenerates_to_base;
        tc "dispersion raises requirement" test_griffin_dispersion_needs_more_coverage;
        tc "accounting identity" test_griffin_identity ] );
    ( "quality.monte_carlo",
      [ tc "Eq.7/Eq.8 vs 200k-chip simulation" test_eq7_eq8_match_monte_carlo;
        tc "Eq.9 vs simulation" test_p_reject_matches_monte_carlo ] );
    ( "quality.ndetect",
      [ tc "epsilon = 0 collapses to Eq.5/7/8" test_ndetect_epsilon_zero_collapses;
        tc "fault escape decays as eps^k" test_ndetect_fault_escape;
        tc "monotone in detection depth" test_ndetect_monotone ] );
    ( "quality.properties",
      List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_props ) ]
