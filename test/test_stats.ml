(* Tests for the statistics substrate. *)

let close ?(eps = 1e-9) expected actual =
  Alcotest.(check (float eps)) "close" expected actual

let rng_seed = 20260705

(* ------------------------------- rng ------------------------------- *)

let test_rng_determinism () =
  let a = Stats.Rng.create ~seed:42 () in
  let b = Stats.Rng.create ~seed:42 () in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Stats.Rng.bits64 a) (Stats.Rng.bits64 b)
  done

let test_rng_different_seeds () =
  let a = Stats.Rng.create ~seed:1 () in
  let b = Stats.Rng.create ~seed:2 () in
  let equal_count = ref 0 in
  for _ = 1 to 64 do
    if Stats.Rng.bits64 a = Stats.Rng.bits64 b then incr equal_count
  done;
  Alcotest.(check bool) "streams differ" true (!equal_count < 2)

let test_rng_int_range () =
  let rng = Stats.Rng.create ~seed:rng_seed () in
  for _ = 1 to 10_000 do
    let v = Stats.Rng.int rng 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7)
  done

let test_rng_int_in_range () =
  let rng = Stats.Rng.create ~seed:rng_seed () in
  for _ = 1 to 1_000 do
    let v = Stats.Rng.int_in rng (-5) 5 in
    Alcotest.(check bool) "in range" true (v >= -5 && v <= 5)
  done

let test_rng_int_uniform_chi_square () =
  (* Pearson chi-square of the rejection-sampled draw against the
     uniform pmf, for several bucket counts. *)
  List.iter
    (fun bound ->
      let rng = Stats.Rng.create ~seed:(rng_seed + bound) () in
      let draws = 20_000 in
      let observed = Array.make bound 0 in
      for _ = 1 to draws do
        let v = Stats.Rng.int rng bound in
        observed.(v) <- observed.(v) + 1
      done;
      let expected =
        Array.make bound (float_of_int draws /. float_of_int bound)
      in
      let r = Stats.Gof.chi_square ~observed ~expected () in
      Alcotest.(check bool)
        (Printf.sprintf "bound %d uniform (p = %.4f)" bound r.Stats.Gof.p_value)
        true
        (r.Stats.Gof.p_value > 1e-4))
    [ 3; 7; 10; 64 ]

let test_rng_int_boundary_bounds () =
  let rng = Stats.Rng.create ~seed:rng_seed () in
  for _ = 1 to 1_000 do
    Alcotest.(check int) "bound 1 is constant" 0 (Stats.Rng.int rng 1)
  done;
  (* The widest legal bound: the rejection region is the truncated
     bucket [2^63 - (2^63 mod b), 2^63); every accepted draw must still
     land in [0, bound). *)
  for _ = 1 to 1_000 do
    let v = Stats.Rng.int rng max_int in
    Alcotest.(check bool) "bound max_int in range" true (v >= 0 && v < max_int)
  done

let test_rng_uniform_range () =
  let rng = Stats.Rng.create ~seed:rng_seed () in
  for _ = 1 to 10_000 do
    let u = Stats.Rng.uniform rng in
    Alcotest.(check bool) "[0,1)" true (u >= 0.0 && u < 1.0)
  done

let test_rng_uniform_pos_never_zero () =
  let rng = Stats.Rng.create ~seed:rng_seed () in
  for _ = 1 to 10_000 do
    Alcotest.(check bool) "(0,1]" true (Stats.Rng.uniform_pos rng > 0.0)
  done

let mean_of n sample =
  let rng = Stats.Rng.create ~seed:rng_seed () in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. sample rng
  done;
  !acc /. float_of_int n

let test_rng_poisson_mean () =
  let m = mean_of 20_000 (fun rng -> float_of_int (Stats.Rng.poisson rng 7.3)) in
  close ~eps:0.15 7.3 m

let test_rng_poisson_large_mean () =
  let m = mean_of 5_000 (fun rng -> float_of_int (Stats.Rng.poisson rng 120.0)) in
  close ~eps:1.5 120.0 m

let test_rng_poisson_zero () =
  let rng = Stats.Rng.create ~seed:rng_seed () in
  Alcotest.(check int) "poisson 0" 0 (Stats.Rng.poisson rng 0.0)

let test_rng_gamma_mean () =
  let m = mean_of 20_000 (fun rng -> Stats.Rng.gamma rng ~shape:2.5 ~scale:1.5) in
  close ~eps:0.1 3.75 m

let test_rng_gamma_small_shape () =
  let m = mean_of 20_000 (fun rng -> Stats.Rng.gamma rng ~shape:0.4 ~scale:2.0) in
  close ~eps:0.05 0.8 m

let test_rng_binomial_mean () =
  let m = mean_of 20_000 (fun rng -> float_of_int (Stats.Rng.binomial rng ~n:40 ~p:0.3)) in
  close ~eps:0.15 12.0 m

let test_rng_binomial_edge () =
  let rng = Stats.Rng.create ~seed:rng_seed () in
  Alcotest.(check int) "p=0" 0 (Stats.Rng.binomial rng ~n:10 ~p:0.0);
  Alcotest.(check int) "p=1" 10 (Stats.Rng.binomial rng ~n:10 ~p:1.0);
  Alcotest.(check int) "n=0" 0 (Stats.Rng.binomial rng ~n:0 ~p:0.5)

let test_rng_binomial_range () =
  let rng = Stats.Rng.create ~seed:rng_seed () in
  for _ = 1 to 2_000 do
    let v = Stats.Rng.binomial rng ~n:17 ~p:0.8 in
    Alcotest.(check bool) "0..n" true (v >= 0 && v <= 17)
  done

let test_rng_neg_binomial_moments () =
  let n = 40_000 in
  let rng = Stats.Rng.create ~seed:rng_seed () in
  let samples =
    Array.init n (fun _ -> float_of_int (Stats.Rng.neg_binomial rng ~mean:4.0 ~alpha:2.0))
  in
  close ~eps:0.15 4.0 (Stats.Summary.mean samples);
  (* variance = mean + mean^2/alpha = 4 + 8 = 12 *)
  close ~eps:1.0 12.0 (Stats.Summary.variance samples)

let test_rng_normal_moments () =
  let n = 40_000 in
  let rng = Stats.Rng.create ~seed:rng_seed () in
  let samples = Array.init n (fun _ -> Stats.Rng.normal rng ~mu:3.0 ~sigma:2.0) in
  close ~eps:0.06 3.0 (Stats.Summary.mean samples);
  close ~eps:0.15 4.0 (Stats.Summary.variance samples)

let test_rng_exponential_mean () =
  let m = mean_of 40_000 (fun rng -> Stats.Rng.exponential rng 2.5) in
  close ~eps:0.08 2.5 m

let test_rng_shuffle_permutes () =
  let rng = Stats.Rng.create ~seed:rng_seed () in
  let a = Array.init 50 (fun i -> i) in
  Stats.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_sample_without_replacement () =
  let rng = Stats.Rng.create ~seed:rng_seed () in
  for _ = 1 to 200 do
    let sample = Stats.Rng.sample_without_replacement rng ~k:10 ~n:30 in
    Alcotest.(check int) "size" 10 (Array.length sample);
    let sorted = Array.copy sample in
    Array.sort compare sorted;
    Array.iteri
      (fun i v ->
        Alcotest.(check bool) "in range" true (v >= 0 && v < 30);
        if i > 0 then Alcotest.(check bool) "distinct" true (sorted.(i - 1) < v))
      sorted
  done

let test_rng_sample_full () =
  let rng = Stats.Rng.create ~seed:rng_seed () in
  let sample = Stats.Rng.sample_without_replacement rng ~k:8 ~n:8 in
  let sorted = Array.copy sample in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "all of them" (Array.init 8 (fun i -> i)) sorted

let test_rng_split_independent () =
  let rng = Stats.Rng.create ~seed:rng_seed () in
  let child = Stats.Rng.split rng in
  let a = Stats.Rng.bits64 rng and b = Stats.Rng.bits64 child in
  Alcotest.(check bool) "streams differ" true (a <> b)

let test_rng_invalid_args () =
  let rng = Stats.Rng.create () in
  Alcotest.check_raises "int 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Stats.Rng.int rng 0));
  Alcotest.check_raises "int_in empty" (Invalid_argument "Rng.int_in: empty range")
    (fun () -> ignore (Stats.Rng.int_in rng 3 2))

(* ----------------------------- special ----------------------------- *)

let test_log_gamma_factorials () =
  for n = 1 to 20 do
    let expected = Stats.Special.log_factorial (n - 1) in
    close ~eps:1e-9 expected (Stats.Special.log_gamma (float_of_int n))
  done

let test_log_gamma_half () =
  (* Gamma(1/2) = sqrt(pi) *)
  close ~eps:1e-10 (0.5 *. log Float.pi) (Stats.Special.log_gamma 0.5)

let test_log_gamma_reflection_region () =
  (* Gamma(0.3) = 2.99156898768759; check against a known value. *)
  close ~eps:1e-8 (log 2.99156898768759) (Stats.Special.log_gamma 0.3)

let test_log_choose () =
  close ~eps:1e-9 (log 252.0) (Stats.Special.log_choose 10 5);
  close ~eps:1e-9 0.0 (Stats.Special.log_choose 10 0);
  close ~eps:1e-9 0.0 (Stats.Special.log_choose 10 10);
  Alcotest.(check bool) "out of range" true
    (Stats.Special.log_choose 5 6 = neg_infinity);
  Alcotest.(check bool) "negative" true (Stats.Special.log_choose 5 (-1) = neg_infinity)

let test_gamma_p_q_complement () =
  List.iter
    (fun (a, x) ->
      close ~eps:1e-10 1.0 (Stats.Special.gamma_p a x +. Stats.Special.gamma_q a x))
    [ (0.5, 0.2); (1.0, 1.0); (3.0, 2.0); (10.0, 12.0); (2.0, 20.0) ]

let test_gamma_p_exponential () =
  (* P(1, x) = 1 - e^-x. *)
  List.iter
    (fun x -> close ~eps:1e-10 (1.0 -. exp (-.x)) (Stats.Special.gamma_p 1.0 x))
    [ 0.1; 0.5; 1.0; 3.0; 10.0 ]

let test_erf_values () =
  close ~eps:1e-7 0.0 (Stats.Special.erf 0.0);
  close ~eps:1e-7 0.8427007929 (Stats.Special.erf 1.0);
  close ~eps:1e-7 (-0.8427007929) (Stats.Special.erf (-1.0));
  close ~eps:1e-7 0.9953222650 (Stats.Special.erf 2.0)

let test_beta_inc_uniform () =
  (* I_x(1,1) = x. *)
  List.iter
    (fun x -> close ~eps:1e-10 x (Stats.Special.beta_inc 1.0 1.0 x))
    [ 0.0; 0.25; 0.5; 0.75; 1.0 ]

let test_beta_inc_symmetry () =
  (* I_x(a,b) = 1 - I_{1-x}(b,a). *)
  List.iter
    (fun (a, b, x) ->
      close ~eps:1e-9
        (1.0 -. Stats.Special.beta_inc b a (1.0 -. x))
        (Stats.Special.beta_inc a b x))
    [ (2.0, 3.0, 0.3); (5.0, 1.5, 0.7); (0.5, 0.5, 0.2) ]

let test_log_sum_exp () =
  close ~eps:1e-10 (log 3.0) (Stats.Special.log_sum_exp [| 0.0; 0.0; 0.0 |]);
  close ~eps:1e-10 1000.0 (Stats.Special.log_sum_exp [| 1000.0; -1000.0 |]);
  Alcotest.(check bool) "empty" true
    (Stats.Special.log_sum_exp [||] = neg_infinity)

(* ------------------------------ dist ------------------------------- *)

let sum_pmf pmf lo hi =
  let acc = ref 0.0 in
  for k = lo to hi do
    acc := !acc +. pmf k
  done;
  !acc

let test_poisson_pmf_sums () =
  let d = Stats.Dist.Poisson.create 4.2 in
  close ~eps:1e-9 1.0 (sum_pmf (Stats.Dist.Poisson.pmf d) 0 200)

let test_poisson_cdf_matches_sum () =
  let d = Stats.Dist.Poisson.create 3.7 in
  for k = 0 to 20 do
    close ~eps:1e-9 (sum_pmf (Stats.Dist.Poisson.pmf d) 0 k) (Stats.Dist.Poisson.cdf d k)
  done

let test_shifted_poisson_support () =
  let d = Stats.Dist.Shifted_poisson.create 5.0 in
  close ~eps:1e-12 0.0 (Stats.Dist.Shifted_poisson.pmf d 0);
  close ~eps:1e-9 1.0 (sum_pmf (Stats.Dist.Shifted_poisson.pmf d) 1 200);
  close ~eps:1e-9 5.0
    (let acc = ref 0.0 in
     for n = 1 to 200 do
       acc := !acc +. (float_of_int n *. Stats.Dist.Shifted_poisson.pmf d n)
     done;
     !acc)

let test_shifted_poisson_degenerate () =
  (* n0 = 1: every defective chip has exactly one fault. *)
  let d = Stats.Dist.Shifted_poisson.create 1.0 in
  close ~eps:1e-12 1.0 (Stats.Dist.Shifted_poisson.pmf d 1);
  close ~eps:1e-12 0.0 (Stats.Dist.Shifted_poisson.pmf d 2)

let test_binomial_pmf_sums () =
  let d = Stats.Dist.Binomial.create ~n:25 ~p:0.37 in
  close ~eps:1e-9 1.0 (sum_pmf (Stats.Dist.Binomial.pmf d) 0 25)

let test_binomial_cdf () =
  let d = Stats.Dist.Binomial.create ~n:12 ~p:0.6 in
  for k = 0 to 12 do
    close ~eps:1e-8 (sum_pmf (Stats.Dist.Binomial.pmf d) 0 k) (Stats.Dist.Binomial.cdf d k)
  done

let test_hypergeometric_pmf_sums () =
  let d = Stats.Dist.Hypergeometric.create ~total:50 ~marked:12 ~draws:20 in
  close ~eps:1e-9 1.0 (sum_pmf (Stats.Dist.Hypergeometric.pmf d) 0 20)

let test_hypergeometric_mean () =
  let d = Stats.Dist.Hypergeometric.create ~total:50 ~marked:12 ~draws:20 in
  let mean =
    let acc = ref 0.0 in
    for k = 0 to 20 do
      acc := !acc +. (float_of_int k *. Stats.Dist.Hypergeometric.pmf d k)
    done;
    !acc
  in
  close ~eps:1e-9 (Stats.Dist.Hypergeometric.mean d) mean

let test_hypergeometric_q0_is_paper_q0 () =
  (* P(draw 0 marked) must equal the paper's exact escape q0. *)
  let total = 200 and marked = 7 in
  List.iter
    (fun f ->
      let draws = int_of_float (f *. float_of_int total) in
      let d = Stats.Dist.Hypergeometric.create ~total ~marked ~draws in
      close ~eps:1e-9
        (Quality.Escape.q0_exact ~total ~faulty:marked ~coverage:f)
        (Stats.Dist.Hypergeometric.pmf d 0))
    [ 0.1; 0.25; 0.5; 0.75 ]

let test_hypergeometric_sampler () =
  let d = Stats.Dist.Hypergeometric.create ~total:40 ~marked:10 ~draws:15 in
  let rng = Stats.Rng.create ~seed:rng_seed () in
  let n = 20_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    let v = Stats.Dist.Hypergeometric.sample d rng in
    Alcotest.(check bool) "in support" true (v >= 0 && v <= 10);
    acc := !acc +. float_of_int v
  done;
  close ~eps:0.05 (Stats.Dist.Hypergeometric.mean d) (!acc /. float_of_int n)

let test_geometric_pmf_sums () =
  let d = Stats.Dist.Geometric.create 0.3 in
  close ~eps:1e-6 1.0 (sum_pmf (Stats.Dist.Geometric.pmf d) 0 200)

let test_neg_binomial_pmf_sums () =
  let d = Stats.Dist.Neg_binomial.create ~mean:5.0 ~alpha:1.5 in
  close ~eps:1e-6 1.0 (sum_pmf (Stats.Dist.Neg_binomial.pmf d) 0 2000)

let test_neg_binomial_poisson_limit () =
  (* alpha -> infinity degenerates to Poisson. *)
  let nb = Stats.Dist.Neg_binomial.create ~mean:3.0 ~alpha:1e7 in
  let p = Stats.Dist.Poisson.create 3.0 in
  for k = 0 to 15 do
    close ~eps:1e-5 (Stats.Dist.Poisson.pmf p k) (Stats.Dist.Neg_binomial.pmf nb k)
  done

let test_gamma_dist_cdf_median () =
  let d = Stats.Dist.Gamma_dist.create ~shape:2.0 ~scale:3.0 in
  (* Median of Gamma(2, 3) ~ 5.035; CDF at mean is > 0.5. *)
  close ~eps:1e-6 0.5 (Stats.Dist.Gamma_dist.cdf d 5.03504097004998);
  Alcotest.(check bool) "cdf(mean) > 0.5" true (Stats.Dist.Gamma_dist.cdf d 6.0 > 0.5)

let test_normal_cdf_quantile_roundtrip () =
  let d = Stats.Dist.Normal.create ~mu:1.0 ~sigma:2.0 in
  List.iter
    (fun p -> close ~eps:1e-8 p (Stats.Dist.Normal.cdf d (Stats.Dist.Normal.quantile d p)))
    [ 0.001; 0.01; 0.1; 0.5; 0.9; 0.99; 0.999 ]

let test_normal_cdf_known () =
  let d = Stats.Dist.Normal.create ~mu:0.0 ~sigma:1.0 in
  close ~eps:1e-7 0.5 (Stats.Dist.Normal.cdf d 0.0);
  close ~eps:1e-7 0.8413447460685429 (Stats.Dist.Normal.cdf d 1.0)

(* ----------------------------- solver ------------------------------ *)

let test_bisect_sqrt () =
  let f x = (x *. x) -. 2.0 in
  close ~eps:1e-9 (sqrt 2.0) (Stats.Solver.bisect ~f ~lo:0.0 ~hi:2.0 ())

let test_brent_sqrt () =
  let f x = (x *. x) -. 2.0 in
  close ~eps:1e-9 (sqrt 2.0) (Stats.Solver.brent ~f ~lo:0.0 ~hi:2.0 ())

let test_brent_transcendental () =
  (* x e^x = 1 -> x = Omega constant 0.5671432904. *)
  let f x = (x *. exp x) -. 1.0 in
  close ~eps:1e-8 0.567143290409784 (Stats.Solver.brent ~f ~lo:0.0 ~hi:1.0 ())

let test_solver_no_bracket () =
  Alcotest.check_raises "no bracket" Stats.Solver.No_bracket (fun () ->
      ignore (Stats.Solver.bisect ~f:(fun x -> (x *. x) +. 1.0) ~lo:(-1.0) ~hi:1.0 ()))

let test_find_bracket () =
  match Stats.Solver.find_bracket ~f:(fun x -> x -. 100.0) ~lo:0.0 ~hi:1.0 () with
  | Some (lo, hi) ->
    Alcotest.(check bool) "brackets" true (lo <= 100.0 && hi >= 100.0)
  | None -> Alcotest.fail "expected a bracket"

let test_golden_section () =
  let f x = (x -. 1.3) ** 2.0 in
  close ~eps:1e-6 1.3 (Stats.Solver.golden_section_min ~f ~lo:0.0 ~hi:3.0 ())

let test_newton () =
  let f x = (x *. x *. x) -. 8.0 in
  let df x = 3.0 *. x *. x in
  close ~eps:1e-8 2.0 (Stats.Solver.newton ~f ~df ~x0:5.0 ())

(* ------------------------------- fit ------------------------------- *)

let test_linear_regression_exact () =
  let points = List.init 10 (fun i -> (float_of_int i, (2.5 *. float_of_int i) +. 1.0)) in
  let fit = Stats.Fit.linear_regression points in
  close ~eps:1e-9 2.5 fit.Stats.Fit.slope;
  close ~eps:1e-9 1.0 fit.Stats.Fit.intercept;
  close ~eps:1e-9 1.0 fit.Stats.Fit.r_squared

let test_linear_regression_through_origin () =
  let points = [ (1.0, 3.0); (2.0, 6.0); (3.0, 9.0) ] in
  close ~eps:1e-9 3.0 (Stats.Fit.linear_regression_through_origin points)

let test_fit_scalar_recovers_parameter () =
  (* Recover c from noisy-free samples of y = exp(-c x). *)
  let c_true = 4.2 in
  let data = List.init 20 (fun i ->
      let x = float_of_int i /. 20.0 in
      (x, exp (-.c_true *. x)))
  in
  let loss c =
    Stats.Fit.sum_squared_error ~model:(fun x -> exp (-.c *. x)) data
  in
  let c_hat, residual = Stats.Fit.fit_scalar ~loss ~lo:1.0 ~hi:20.0 () in
  close ~eps:1e-4 c_true c_hat;
  Alcotest.(check bool) "near-zero residual" true (residual < 1e-8)

(* ----------------------------- summary ----------------------------- *)

let test_summary_mean_var () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  close ~eps:1e-12 5.0 (Stats.Summary.mean xs);
  close ~eps:1e-9 (32.0 /. 7.0) (Stats.Summary.variance xs)

let test_summary_median_quantile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  close ~eps:1e-12 2.5 (Stats.Summary.median xs);
  close ~eps:1e-12 1.0 (Stats.Summary.quantile xs 0.0);
  close ~eps:1e-12 4.0 (Stats.Summary.quantile xs 1.0)

let test_summary_correlation () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let ys = [| 2.0; 4.0; 6.0; 8.0 |] in
  close ~eps:1e-12 1.0 (Stats.Summary.correlation xs ys);
  let anti = [| 8.0; 6.0; 4.0; 2.0 |] in
  close ~eps:1e-12 (-1.0) (Stats.Summary.correlation xs anti)

let test_summary_histogram () =
  let xs = [| 0.0; 0.1; 0.9; 1.0; 0.5 |] in
  let h = Stats.Summary.histogram ~bins:2 xs in
  Alcotest.(check int) "total preserved" 5 (Array.fold_left ( + ) 0 h.Stats.Summary.counts)

(* -------------------------------- gof ------------------------------- *)

let test_gof_chi_square_uniform () =
  (* A fair die rolled a perfectly uniform number of times: X2 = 0. *)
  let r =
    Stats.Gof.chi_square ~observed:[| 10; 10; 10; 10; 10; 10 |]
      ~expected:[| 1.0; 1.0; 1.0; 1.0; 1.0; 1.0 |] ()
  in
  close ~eps:1e-12 0.0 r.Stats.Gof.statistic;
  close ~eps:1e-9 1.0 r.Stats.Gof.p_value

let test_gof_chi_square_known_value () =
  (* Classic textbook die example: observed [5;8;9;8;10;20] vs fair. *)
  let r =
    Stats.Gof.chi_square ~observed:[| 5; 8; 9; 8; 10; 20 |]
      ~expected:(Array.make 6 1.0) ()
  in
  close ~eps:1e-9 13.4 r.Stats.Gof.statistic;
  Alcotest.(check int) "df" 5 r.Stats.Gof.degrees_of_freedom;
  Alcotest.(check bool) "p small" true (r.Stats.Gof.p_value < 0.05)

let test_gof_pooling () =
  (* Thin tail cells get pooled; statistic stays finite. *)
  let observed = Array.init 30 (fun i -> if i < 3 then 30 else 1) in
  let expected = Array.init 30 (fun i -> exp (-.float_of_int i)) in
  let r = Stats.Gof.chi_square ~observed ~expected () in
  Alcotest.(check bool) "pooled" true (r.Stats.Gof.cells < 30);
  Alcotest.(check bool) "finite" true (Float.is_finite r.Stats.Gof.statistic)

let test_gof_shifted_poisson_accepts_ideal () =
  let rng = Stats.Rng.create ~seed:99 () in
  let d = Stats.Dist.Shifted_poisson.create 8.0 in
  let counts = Array.init 1500 (fun _ -> Stats.Dist.Shifted_poisson.sample d rng) in
  let r = Stats.Gof.fit_shifted_poisson ~counts ~n0:(Stats.Summary.mean_int counts) in
  Alcotest.(check bool)
    (Printf.sprintf "p = %.3f accepts" r.Stats.Gof.p_value)
    true (r.Stats.Gof.p_value > 0.01)

let test_gof_shifted_poisson_rejects_overdispersed () =
  (* Negative-binomial counts with the same mean must be rejected. *)
  let rng = Stats.Rng.create ~seed:98 () in
  let counts =
    Array.init 1500 (fun _ -> 1 + Stats.Rng.neg_binomial rng ~mean:7.0 ~alpha:1.5)
  in
  let r = Stats.Gof.fit_shifted_poisson ~counts ~n0:(Stats.Summary.mean_int counts) in
  Alcotest.(check bool)
    (Printf.sprintf "p = %.5f rejects" r.Stats.Gof.p_value)
    true (r.Stats.Gof.p_value < 0.001)

let test_gof_validation () =
  Alcotest.(check bool) "mismatched cells" true
    (try
       ignore (Stats.Gof.chi_square ~observed:[| 1 |] ~expected:[| 1.0; 2.0 |] ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "counts below 1 rejected" true
    (try
       ignore (Stats.Gof.fit_shifted_poisson ~counts:[| 0 |] ~n0:2.0);
       false
     with Invalid_argument _ -> true)

(* --------------------------- qcheck props -------------------------- *)

let qcheck_props =
  let open QCheck in
  [ Test.make ~count:200 ~name:"poisson cdf is monotone"
      (pair (float_range 0.1 30.0) (int_range 0 50))
      (fun (lambda, k) ->
        let d = Stats.Dist.Poisson.create lambda in
        Stats.Dist.Poisson.cdf d k <= Stats.Dist.Poisson.cdf d (k + 1) +. 1e-12);
    Test.make ~count:200 ~name:"gamma_p in [0,1]"
      (pair (float_range 0.1 50.0) (float_range 0.0 100.0))
      (fun (a, x) ->
        let p = Stats.Special.gamma_p a x in
        p >= -1e-12 && p <= 1.0 +. 1e-12);
    Test.make ~count:200 ~name:"log_choose symmetry"
      (pair (int_range 0 200) (int_range 0 200))
      (fun (n, k) ->
        k > n
        || abs_float (Stats.Special.log_choose n k -. Stats.Special.log_choose n (n - k))
           < 1e-9);
    Test.make ~count:100 ~name:"quantile within data range"
      (pair (list_of_size (Gen.int_range 1 50) (float_range (-100.0) 100.0))
         (float_range 0.0 1.0))
      (fun (xs, q) ->
        let arr = Array.of_list xs in
        let v = Stats.Summary.quantile arr q in
        v >= Stats.Summary.minimum arr -. 1e-9 && v <= Stats.Summary.maximum arr +. 1e-9);
    Test.make ~count:100 ~name:"sample_without_replacement distinct"
      (pair (int_range 0 30) (int_range 30 100))
      (fun (k, n) ->
        let rng = Stats.Rng.create ~seed:(k + (n * 1000)) () in
        let sample = Stats.Rng.sample_without_replacement rng ~k ~n in
        let sorted = Array.copy sample in
        Array.sort compare sorted;
        let distinct = ref true in
        Array.iteri (fun i v -> if i > 0 && sorted.(i - 1) >= v then distinct := false) sorted;
        Array.length sample = k && !distinct) ]

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [ ( "stats.rng",
      [ tc "determinism" test_rng_determinism;
        tc "different seeds" test_rng_different_seeds;
        tc "int range" test_rng_int_range;
        tc "int uniform (chi-square)" test_rng_int_uniform_chi_square;
        tc "int boundary bounds" test_rng_int_boundary_bounds;
        tc "int_in range" test_rng_int_in_range;
        tc "uniform range" test_rng_uniform_range;
        tc "uniform_pos positive" test_rng_uniform_pos_never_zero;
        tc "poisson mean" test_rng_poisson_mean;
        tc "poisson large mean" test_rng_poisson_large_mean;
        tc "poisson zero" test_rng_poisson_zero;
        tc "gamma mean" test_rng_gamma_mean;
        tc "gamma small shape" test_rng_gamma_small_shape;
        tc "binomial mean" test_rng_binomial_mean;
        tc "binomial edges" test_rng_binomial_edge;
        tc "binomial range" test_rng_binomial_range;
        tc "neg binomial moments" test_rng_neg_binomial_moments;
        tc "normal moments" test_rng_normal_moments;
        tc "exponential mean" test_rng_exponential_mean;
        tc "shuffle permutes" test_rng_shuffle_permutes;
        tc "sample without replacement" test_rng_sample_without_replacement;
        tc "sample full" test_rng_sample_full;
        tc "split independent" test_rng_split_independent;
        tc "invalid args" test_rng_invalid_args ] );
    ( "stats.special",
      [ tc "log_gamma factorials" test_log_gamma_factorials;
        tc "log_gamma half" test_log_gamma_half;
        tc "log_gamma reflection" test_log_gamma_reflection_region;
        tc "log_choose" test_log_choose;
        tc "gamma P+Q=1" test_gamma_p_q_complement;
        tc "gamma_p exponential" test_gamma_p_exponential;
        tc "erf values" test_erf_values;
        tc "beta_inc uniform" test_beta_inc_uniform;
        tc "beta_inc symmetry" test_beta_inc_symmetry;
        tc "log_sum_exp" test_log_sum_exp ] );
    ( "stats.dist",
      [ tc "poisson pmf sums" test_poisson_pmf_sums;
        tc "poisson cdf" test_poisson_cdf_matches_sum;
        tc "shifted poisson support/mean" test_shifted_poisson_support;
        tc "shifted poisson degenerate" test_shifted_poisson_degenerate;
        tc "binomial pmf sums" test_binomial_pmf_sums;
        tc "binomial cdf" test_binomial_cdf;
        tc "hypergeometric pmf sums" test_hypergeometric_pmf_sums;
        tc "hypergeometric mean" test_hypergeometric_mean;
        tc "hypergeometric q0 = Escape.q0" test_hypergeometric_q0_is_paper_q0;
        tc "hypergeometric sampler" test_hypergeometric_sampler;
        tc "geometric pmf sums" test_geometric_pmf_sums;
        tc "neg binomial pmf sums" test_neg_binomial_pmf_sums;
        tc "neg binomial poisson limit" test_neg_binomial_poisson_limit;
        tc "gamma dist cdf" test_gamma_dist_cdf_median;
        tc "normal quantile roundtrip" test_normal_cdf_quantile_roundtrip;
        tc "normal cdf values" test_normal_cdf_known ] );
    ( "stats.solver",
      [ tc "bisect sqrt2" test_bisect_sqrt;
        tc "brent sqrt2" test_brent_sqrt;
        tc "brent omega" test_brent_transcendental;
        tc "no bracket" test_solver_no_bracket;
        tc "find bracket" test_find_bracket;
        tc "golden section" test_golden_section;
        tc "newton cube root" test_newton ] );
    ( "stats.fit",
      [ tc "linear regression" test_linear_regression_exact;
        tc "through origin" test_linear_regression_through_origin;
        tc "fit_scalar" test_fit_scalar_recovers_parameter ] );
    ( "stats.summary",
      [ tc "mean/variance" test_summary_mean_var;
        tc "median/quantile" test_summary_median_quantile;
        tc "correlation" test_summary_correlation;
        tc "histogram" test_summary_histogram ] );
    ( "stats.gof",
      [ tc "zero statistic" test_gof_chi_square_uniform;
        tc "known die example" test_gof_chi_square_known_value;
        tc "tail pooling" test_gof_pooling;
        tc "accepts ideal shifted Poisson" test_gof_shifted_poisson_accepts_ideal;
        tc "rejects over-dispersed counts" test_gof_shifted_poisson_rejects_overdispersed;
        tc "validation" test_gof_validation ] );
    ( "stats.properties",
      List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_props ) ]
