(* Tests for 5-valued logic, PODEM and the ATPG driver. *)

module F = Faults.Fault
module N = Circuit.Netlist
module L5 = Tpg.Logic5

let exhaustive_patterns width =
  Array.init (1 lsl width) (fun v ->
      Array.init width (fun i -> (v lsr i) land 1 = 1))

(* ----------------------------- logic5 ------------------------------ *)

let test_logic5_constants () =
  Alcotest.(check bool) "D is effect" true (L5.is_fault_effect L5.d);
  Alcotest.(check bool) "D' is effect" true (L5.is_fault_effect L5.dbar);
  Alcotest.(check bool) "1 is not" false (L5.is_fault_effect L5.one);
  Alcotest.(check bool) "X is x" true (L5.is_x L5.x);
  Alcotest.(check bool) "D has no unknown" false (L5.has_unknown L5.d)

let test_logic5_ternary_tables () =
  Alcotest.(check bool) "F and U = F" true (L5.and3 L5.F L5.U = L5.F);
  Alcotest.(check bool) "T and U = U" true (L5.and3 L5.T L5.U = L5.U);
  Alcotest.(check bool) "T or U = T" true (L5.or3 L5.T L5.U = L5.T);
  Alcotest.(check bool) "F or U = U" true (L5.or3 L5.F L5.U = L5.U);
  Alcotest.(check bool) "not U = U" true (L5.not3 L5.U = L5.U);
  Alcotest.(check bool) "T xor U = U" true (L5.xor3 L5.T L5.U = L5.U);
  Alcotest.(check bool) "T xor T = F" true (L5.xor3 L5.T L5.T = L5.F)

let test_logic5_d_algebra () =
  (* AND(D, 1) = D, AND(D, 0) = 0, AND(D, D') = 0, XOR(D, D) = 0. *)
  let eval kind vs = L5.eval_gate kind (Array.of_list vs) in
  Alcotest.(check bool) "AND(D,1)=D" true (eval Circuit.Gate.And [ L5.d; L5.one ] = L5.d);
  Alcotest.(check bool) "AND(D,0)=0" true (eval Circuit.Gate.And [ L5.d; L5.zero ] = L5.zero);
  Alcotest.(check bool) "AND(D,D')=0" true
    (eval Circuit.Gate.And [ L5.d; L5.dbar ] = L5.zero);
  Alcotest.(check bool) "XOR(D,D)=0" true (eval Circuit.Gate.Xor [ L5.d; L5.d ] = L5.zero);
  Alcotest.(check bool) "XOR(D,D')=1" true
    (eval Circuit.Gate.Xor [ L5.d; L5.dbar ] = L5.one);
  Alcotest.(check bool) "NOT(D)=D'" true (eval Circuit.Gate.Not [ L5.d ] = L5.dbar);
  Alcotest.(check bool) "OR(D',1)=1" true (eval Circuit.Gate.Or [ L5.dbar; L5.one ] = L5.one)

let test_logic5_consistent_with_bool () =
  (* On fully-defined values, 5-valued evaluation = boolean evaluation
     applied to each machine. *)
  let kinds =
    [ Circuit.Gate.And; Circuit.Gate.Nand; Circuit.Gate.Or; Circuit.Gate.Nor;
      Circuit.Gate.Xor; Circuit.Gate.Xnor ]
  in
  List.iter
    (fun kind ->
      for a = 0 to 3 do
        for b = 0 to 3 do
          (* encode 0..3 as (good, faulty) bit pairs *)
          let v code =
            { L5.good = (if code land 1 = 1 then L5.T else L5.F);
              faulty = (if code land 2 = 2 then L5.T else L5.F) }
          in
          let result = L5.eval_gate kind [| v a; v b |] in
          let expected_good =
            Circuit.Gate.eval kind [| a land 1 = 1; b land 1 = 1 |]
          in
          let expected_faulty =
            Circuit.Gate.eval kind [| a land 2 = 2; b land 2 = 2 |]
          in
          Alcotest.(check bool) "good plane" true
            (result.L5.good = if expected_good then L5.T else L5.F);
          Alcotest.(check bool) "faulty plane" true
            (result.L5.faulty = if expected_faulty then L5.T else L5.F)
        done
      done)
    kinds

(* ------------------------------ podem ------------------------------ *)

let verify_test_detects c fault pattern =
  (Fsim.Serial.run c [| fault |] [| pattern |]).(0) <> None

let exhaustively_detectable c fault width =
  (Fsim.Serial.run c [| fault |] (exhaustive_patterns width)).(0) <> None

(* Sound and complete on a circuit small enough for exhaustive ground truth. *)
let check_podem_on c width =
  let universe = Faults.Universe.all c in
  Array.iter
    (fun fault ->
      match Tpg.Podem.generate ~backtrack_limit:10_000 c fault with
      | Tpg.Podem.Test pattern, _ ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: generated test detects" (F.to_string c fault))
          true (verify_test_detects c fault pattern)
      | Tpg.Podem.Untestable, _ ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: redundancy claim is true" (F.to_string c fault))
          false (exhaustively_detectable c fault width)
      | Tpg.Podem.Aborted, _ ->
        Alcotest.failf "%s: aborted on a small circuit" (F.to_string c fault))
    universe

let test_podem_c17 () = check_podem_on (Circuit.Generators.c17 ()) 5

let test_podem_adder () = check_podem_on (Circuit.Generators.ripple_carry_adder ~bits:3) 7

let test_podem_mux () = check_podem_on (Circuit.Generators.mux_tree ~select_bits:2) 6

let test_podem_parity () = check_podem_on (Circuit.Generators.parity_tree ~bits:6) 6

let test_podem_random_circuits () =
  List.iter
    (fun seed ->
      check_podem_on
        (Circuit.Generators.random_circuit ~inputs:7 ~gates:60 ~outputs:4 ~seed)
        7)
    [ 10; 20; 30 ]

let test_podem_finds_redundancy () =
  (* y = OR(a, AND(a, b)) — the AND gate is functionally redundant
     (absorption), so AND-output sa0 cannot be detected at y. *)
  let b = N.Builder.create ~name:"redundant" in
  let a = N.Builder.add_input b "a" in
  let bb = N.Builder.add_input b "b" in
  let g = N.Builder.add_gate b ~name:"g" Circuit.Gate.And [ a; bb ] in
  let y = N.Builder.add_gate b ~name:"y" Circuit.Gate.Or [ a; g ] in
  N.Builder.mark_output b y;
  let c = N.Builder.build b in
  let fault = { F.site = F.Stem g; polarity = F.Stuck_at_0 } in
  (match Tpg.Podem.generate c fault with
  | Tpg.Podem.Untestable, _ -> ()
  | Tpg.Podem.Test _, _ -> Alcotest.fail "claimed a test for a redundant fault"
  | Tpg.Podem.Aborted, _ -> Alcotest.fail "aborted on a 2-gate circuit");
  (* Cross-check with exhaustive simulation. *)
  Alcotest.(check bool) "indeed undetectable" false (exhaustively_detectable c fault 2)

let test_podem_respects_backtrack_limit () =
  (* With limit 0 PODEM may abort but must not claim untestable wrongly
     or return a bogus test. *)
  let c = Circuit.Generators.array_multiplier ~bits:3 in
  let universe = Faults.Universe.all c in
  Array.iter
    (fun fault ->
      match Tpg.Podem.generate ~backtrack_limit:0 c fault with
      | Tpg.Podem.Test pattern, _ ->
        Alcotest.(check bool) "test valid" true (verify_test_detects c fault pattern)
      | Tpg.Podem.Untestable, _ ->
        Alcotest.(check bool) "sound redundancy" false (exhaustively_detectable c fault 6)
      | Tpg.Podem.Aborted, stats ->
        Alcotest.(check bool) "within budget" true (stats.Tpg.Podem.backtracks >= 1))
    universe

let test_podem_stats_populated () =
  let c = Circuit.Generators.c17 () in
  let fault = { F.site = F.Stem 5; polarity = F.Stuck_at_0 } in
  let _, stats = Tpg.Podem.generate c fault in
  Alcotest.(check bool) "did some implications" true (stats.Tpg.Podem.implications > 0)

(* ------------------------------ scoap ------------------------------- *)

let test_scoap_inverter_chain () =
  (* a -> NOT x -> NOT y: CC grows by one per level and swaps polarity
     through each inverter. *)
  let b = N.Builder.create ~name:"chain" in
  let a = N.Builder.add_input b "a" in
  let x = N.Builder.add_gate b ~name:"x" Circuit.Gate.Not [ a ] in
  let y = N.Builder.add_gate b ~name:"y" Circuit.Gate.Not [ x ] in
  N.Builder.mark_output b y;
  let c = N.Builder.build b in
  let t = Tpg.Scoap.analyze c in
  Alcotest.(check int) "PI cc0" 1 (Tpg.Scoap.cc0 t a);
  Alcotest.(check int) "PI cc1" 1 (Tpg.Scoap.cc1 t a);
  Alcotest.(check int) "x cc0 = cc1(a)+1" 2 (Tpg.Scoap.cc0 t x);
  Alcotest.(check int) "y cc0 = cc0(a)+2" 3 (Tpg.Scoap.cc0 t y);
  Alcotest.(check int) "PO observability" 0 (Tpg.Scoap.co t y);
  Alcotest.(check int) "x observability" 1 (Tpg.Scoap.co t x);
  Alcotest.(check int) "a observability" 2 (Tpg.Scoap.co t a)

let test_scoap_and_gate () =
  let b = N.Builder.create ~name:"and3" in
  let a = N.Builder.add_input b "a" in
  let bb = N.Builder.add_input b "b" in
  let cc = N.Builder.add_input b "c" in
  let g = N.Builder.add_gate b ~name:"g" Circuit.Gate.And [ a; bb; cc ] in
  N.Builder.mark_output b g;
  let c = N.Builder.build b in
  let t = Tpg.Scoap.analyze c in
  Alcotest.(check int) "cc1 = sum + 1" 4 (Tpg.Scoap.cc1 t g);
  Alcotest.(check int) "cc0 = min + 1" 2 (Tpg.Scoap.cc0 t g);
  (* Observing input a requires b = c = 1: co = 0 + 1 + 1 + 1. *)
  Alcotest.(check int) "pin observability" 3 (Tpg.Scoap.co_pin t ~gate:g ~pin:0);
  Alcotest.(check int) "stem co of a" 3 (Tpg.Scoap.co t a)

let test_scoap_constants_saturate () =
  let b = N.Builder.create ~name:"const" in
  let k = N.Builder.add_const b "one" true in
  let a = N.Builder.add_input b "a" in
  let g = N.Builder.add_gate b ~name:"g" Circuit.Gate.And [ k; a ] in
  N.Builder.mark_output b g;
  let c = N.Builder.build b in
  let t = Tpg.Scoap.analyze c in
  Alcotest.(check int) "const1 cc1 = 0" 0 (Tpg.Scoap.cc1 t k);
  Alcotest.(check bool) "const1 cc0 saturates" true
    (Tpg.Scoap.cc0 t k >= Tpg.Scoap.infinite)

let test_scoap_xor_controllability () =
  let b = N.Builder.create ~name:"xor2" in
  let a = N.Builder.add_input b "a" in
  let bb = N.Builder.add_input b "b" in
  let g = N.Builder.add_gate b ~name:"g" Circuit.Gate.Xor [ a; bb ] in
  N.Builder.mark_output b g;
  let c = N.Builder.build b in
  let t = Tpg.Scoap.analyze c in
  (* XOR: 0 via (0,0) or (1,1): cost 2 + 1; same for 1. *)
  Alcotest.(check int) "cc0" 3 (Tpg.Scoap.cc0 t g);
  Alcotest.(check int) "cc1" 3 (Tpg.Scoap.cc1 t g)

let test_scoap_fault_difficulty_ranks_depth () =
  (* In a long AND chain, the deep fault is harder than the shallow one. *)
  let b = N.Builder.create ~name:"deep" in
  let first = N.Builder.add_input b "x0" in
  let prev = ref first in
  for i = 1 to 10 do
    let extra = N.Builder.add_input b (Printf.sprintf "x%d" i) in
    prev := N.Builder.add_gate b Circuit.Gate.And [ !prev; extra ]
  done;
  N.Builder.mark_output b !prev;
  let c = N.Builder.build b in
  let t = Tpg.Scoap.analyze c in
  (* Output sa1: activate with any input 0, observe for free.  Deep
     input sa1: activate cheaply but observe through the whole chain. *)
  let shallow =
    Tpg.Scoap.fault_difficulty t c
      { Faults.Fault.site = Faults.Fault.Stem !prev; polarity = Faults.Fault.Stuck_at_1 }
  in
  let deep =
    Tpg.Scoap.fault_difficulty t c
      { Faults.Fault.site = Faults.Fault.Stem first; polarity = Faults.Fault.Stuck_at_1 }
  in
  Alcotest.(check bool) "deep PI fault harder" true (deep > shallow)

let test_scoap_hardest_faults () =
  let c = Circuit.Generators.array_multiplier ~bits:4 in
  let t = Tpg.Scoap.analyze c in
  let universe = Faults.Universe.all c in
  let hardest = Tpg.Scoap.hardest_faults t c universe ~count:5 in
  Alcotest.(check int) "five returned" 5 (List.length hardest);
  let difficulties = List.map snd hardest in
  let rec sorted_desc = function
    | a :: (b :: _ as rest) -> a >= b && sorted_desc rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "sorted hardest-first" true (sorted_desc difficulties)

let test_podem_scoap_guidance_same_verdicts () =
  (* Guidance shapes the search, never the verdict. *)
  List.iter
    (fun seed ->
      let c = Circuit.Generators.random_circuit ~inputs:7 ~gates:60 ~outputs:4 ~seed in
      let scoap = Tpg.Scoap.analyze c in
      let universe = Faults.Universe.all c in
      Array.iter
        (fun fault ->
          let verdict_of (r, _) =
            match r with
            | Tpg.Podem.Test _ -> `Test
            | Tpg.Podem.Untestable -> `Untestable
            | Tpg.Podem.Aborted -> `Aborted
          in
          let level = verdict_of (Tpg.Podem.generate ~backtrack_limit:5000 c fault) in
          let scoap_guided =
            verdict_of
              (Tpg.Podem.generate ~backtrack_limit:5000
                 ~guidance:(Tpg.Podem.Scoap_based scoap) c fault)
          in
          Alcotest.(check bool) "same verdict" true (level = scoap_guided);
          (* And SCOAP-guided tests are still valid tests. *)
          match
            Tpg.Podem.generate ~guidance:(Tpg.Podem.Scoap_based scoap) c fault
          with
          | Tpg.Podem.Test pattern, _ ->
            Alcotest.(check bool) "valid test" true (verify_test_detects c fault pattern)
          | (Tpg.Podem.Untestable | Tpg.Podem.Aborted), _ -> ())
        universe)
    [ 41; 42 ]

let test_scoap_saturating_add () =
  let inf = Tpg.Scoap.infinite in
  (* [infinite = max_int / 4] leaves headroom: even a three-way sum of
     saturated costs is computed before the clamp without wrapping. *)
  Alcotest.(check int) "inf + inf = inf" inf (Tpg.Scoap.saturating_add inf inf);
  Alcotest.(check int) "inf + 1 = inf" inf (Tpg.Scoap.saturating_add inf 1);
  Alcotest.(check int) "1 + inf = inf" inf (Tpg.Scoap.saturating_add 1 inf);
  Alcotest.(check int) "0 + 0 = 0" 0 (Tpg.Scoap.saturating_add 0 0);
  Alcotest.(check int) "near clamp" inf (Tpg.Scoap.saturating_add (inf - 1) 2);
  Alcotest.(check int) "below clamp" (inf - 1)
    (Tpg.Scoap.saturating_add (inf - 3) 2);
  (* Never negative, never above infinite — i.e. no silent overflow. *)
  List.iter
    (fun (a, b) ->
      let s = Tpg.Scoap.saturating_add a b in
      Alcotest.(check bool) "in [0, infinite]" true (s >= 0 && s <= inf))
    [ (inf, inf); (inf - 1, inf - 1); (inf, 0); (12345, inf - 1) ];
  (* Fault difficulties inherit the bound. *)
  let c = Circuit.Generators.redundant_demo () in
  let t = Tpg.Scoap.analyze c in
  Array.iter
    (fun fault ->
      let d = Tpg.Scoap.fault_difficulty t c fault in
      Alcotest.(check bool) "difficulty in [0, infinite]" true (d >= 0 && d <= inf))
    (Faults.Universe.all c)

let test_scoap_export () =
  let c = Circuit.Generators.c17 () in
  let t = Tpg.Scoap.analyze c in
  let universe = Faults.Universe.all c in
  let count = 5 in
  let csv = Tpg.Scoap.hardest_to_csv t c universe ~count in
  let lines = String.split_on_char '\n' (String.trim csv) in
  (match lines with
  | header :: rows ->
    Alcotest.(check string) "csv header" "fault,difficulty,saturated" header;
    Alcotest.(check int) "csv rows" count (List.length rows)
  | [] -> Alcotest.fail "empty csv");
  match Tpg.Scoap.hardest_to_json t c universe ~count with
  | Report.Json.List entries ->
    Alcotest.(check int) "json entries" count (List.length entries);
    List.iter
      (function
        | Report.Json.Obj fields ->
          List.iter
            (fun key ->
              Alcotest.(check bool) key true (List.mem_assoc key fields))
            [ "fault"; "difficulty"; "saturated" ]
        | _ -> Alcotest.fail "entry is not an object")
      entries
  | _ -> Alcotest.fail "json export is not a list"

(* ------------------------- implication atpg ------------------------- *)

let check_implication_on c width =
  let universe = Faults.Universe.all c in
  Array.iter
    (fun fault ->
      match Tpg.Implication_atpg.generate ~backtrack_limit:10_000 c fault with
      | Tpg.Implication_atpg.Test pattern, _ ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: test detects" (F.to_string c fault))
          true (verify_test_detects c fault pattern)
      | Tpg.Implication_atpg.Untestable, _ ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: redundancy claim true" (F.to_string c fault))
          false (exhaustively_detectable c fault width)
      | Tpg.Implication_atpg.Aborted, _ ->
        Alcotest.failf "%s: aborted on a small circuit" (F.to_string c fault))
    universe

let test_implication_c17 () = check_implication_on (Circuit.Generators.c17 ()) 5

let test_implication_adder () =
  check_implication_on (Circuit.Generators.ripple_carry_adder ~bits:3) 7

let test_implication_random () =
  List.iter
    (fun seed ->
      check_implication_on
        (Circuit.Generators.random_circuit ~inputs:7 ~gates:60 ~outputs:4 ~seed)
        7)
    [ 11; 21; 31 ]

let test_implication_agrees_with_podem () =
  List.iter
    (fun seed ->
      let c = Circuit.Generators.random_circuit ~inputs:8 ~gates:70 ~outputs:5 ~seed in
      Array.iter
        (fun fault ->
          let podem =
            match Tpg.Podem.generate ~backtrack_limit:10_000 c fault with
            | Tpg.Podem.Test _, _ -> `Test
            | Tpg.Podem.Untestable, _ -> `Untestable
            | Tpg.Podem.Aborted, _ -> `Aborted
          in
          let implication =
            match Tpg.Implication_atpg.generate ~backtrack_limit:10_000 c fault with
            | Tpg.Implication_atpg.Test _, _ -> `Test
            | Tpg.Implication_atpg.Untestable, _ -> `Untestable
            | Tpg.Implication_atpg.Aborted, _ -> `Aborted
          in
          Alcotest.(check bool) "same verdict" true
            (podem = implication || podem = `Aborted || implication = `Aborted))
        (Faults.Universe.all c))
    [ 51; 52 ]

let test_implication_finds_redundancy () =
  let b = N.Builder.create ~name:"redundant" in
  let a = N.Builder.add_input b "a" in
  let bb = N.Builder.add_input b "b" in
  let g = N.Builder.add_gate b ~name:"g" Circuit.Gate.And [ a; bb ] in
  let y = N.Builder.add_gate b ~name:"y" Circuit.Gate.Or [ a; g ] in
  N.Builder.mark_output b y;
  let c = N.Builder.build b in
  match
    Tpg.Implication_atpg.generate c { F.site = F.Stem g; polarity = F.Stuck_at_0 }
  with
  | Tpg.Implication_atpg.Untestable, _ -> ()
  | Tpg.Implication_atpg.Test _, _ -> Alcotest.fail "claimed a test"
  | Tpg.Implication_atpg.Aborted, _ -> Alcotest.fail "aborted"

let test_atpg_with_implication_engine () =
  let c = Circuit.Generators.ripple_carry_adder ~bits:4 in
  let universe = Faults.Universe.all c in
  let config =
    { Tpg.Atpg.default_config with Tpg.Atpg.engine = Tpg.Atpg.Implication_engine }
  in
  let report = Tpg.Atpg.run ~config c universe in
  Alcotest.(check int) "no aborts" 0 report.Tpg.Atpg.aborted;
  Alcotest.(check (float 1e-9)) "full coverage" 1.0 (Tpg.Atpg.coverage report)

(* ---------------------------- random tpg ---------------------------- *)

let test_random_walk_shape () =
  let c = Circuit.Generators.lsi_chip ~scale:4 () in
  let rng = Stats.Rng.create ~seed:8 () in
  let walk = Tpg.Random_tpg.random_walk rng c ~count:50 () in
  Alcotest.(check int) "count" 50 (Array.length walk);
  (* Consecutive patterns differ in at most 1 bit (flips=1), and are
     never more than 1 apart. *)
  for i = 1 to 49 do
    let differences = ref 0 in
    Array.iteri
      (fun j v -> if v <> walk.(i - 1).(j) then incr differences)
      walk.(i);
    Alcotest.(check bool) "hamming <= 1" true (!differences <= 1)
  done

let test_weighted_extremes () =
  let c = Circuit.Generators.c17 () in
  let rng = Stats.Rng.create ~seed:8 () in
  let all_zero = Tpg.Random_tpg.weighted rng c ~weights:(Array.make 5 0.0) ~count:10 in
  Array.iter
    (fun p -> Alcotest.(check bool) "all zero" true (Array.for_all not p))
    all_zero;
  let all_one = Tpg.Random_tpg.weighted rng c ~weights:(Array.make 5 1.0) ~count:10 in
  Array.iter
    (fun p -> Alcotest.(check bool) "all one" true (Array.for_all (fun b -> b) p))
    all_one

let test_until_coverage_reaches_target () =
  let c = Circuit.Generators.ripple_carry_adder ~bits:4 in
  let universe = Faults.Universe.all c in
  let rng = Stats.Rng.create ~seed:31 () in
  let patterns, profile =
    Tpg.Random_tpg.until_coverage rng c universe ~target:0.9 ~max_patterns:2000
  in
  Alcotest.(check bool) "target reached" true
    (Fsim.Coverage.final_coverage profile >= 0.9);
  Alcotest.(check int) "profile matches patterns"
    (Array.length patterns) profile.Fsim.Coverage.pattern_count;
  (* The incremental bookkeeping must agree with a from-scratch grade. *)
  let fresh = Fsim.Coverage.profile c universe patterns in
  Alcotest.(check bool) "first detections identical" true
    (fresh.Fsim.Coverage.first_detection = profile.Fsim.Coverage.first_detection)

(* ------------------------------ atpg ------------------------------- *)

let test_atpg_full_coverage_small () =
  (* On irredundant circuits the flow must reach 100 % of detectable
     faults; c17 has no redundancy at all. *)
  let c = Circuit.Generators.c17 () in
  let universe = Faults.Universe.all c in
  let report = Tpg.Atpg.run c universe in
  Alcotest.(check (float 1e-9)) "full coverage" 1.0 (Tpg.Atpg.coverage report);
  Alcotest.(check int) "no aborts" 0 report.Tpg.Atpg.aborted;
  Alcotest.(check int) "no redundancy in c17" 0 report.Tpg.Atpg.untestable

let test_atpg_multiplier () =
  let c = Circuit.Generators.array_multiplier ~bits:4 in
  let classes = Faults.Collapse.equivalence c (Faults.Universe.all c) in
  let reps = Faults.Collapse.representatives classes in
  let report = Tpg.Atpg.run c reps in
  (* Coverage + untestable must account for everything (no aborts at
     this size). *)
  Alcotest.(check int) "no aborts" 0 report.Tpg.Atpg.aborted;
  let detected = Fsim.Coverage.detected_count report.Tpg.Atpg.profile in
  Alcotest.(check int) "detected + untestable = universe"
    (Array.length reps) (detected + report.Tpg.Atpg.untestable);
  (* Patterns actually deliver the claimed coverage under the
     independent serial engine. *)
  let verified = Fsim.Serial.run c reps report.Tpg.Atpg.patterns in
  let verified_count =
    Array.fold_left (fun acc d -> if d <> None then acc + 1 else acc) 0 verified
  in
  Alcotest.(check int) "serial agrees" detected verified_count

let test_atpg_profile_consistent () =
  let c = Circuit.Generators.alu ~bits:3 in
  let universe = Faults.Universe.all c in
  let report = Tpg.Atpg.run c universe in
  Alcotest.(check int) "profile sized to universe"
    (Array.length universe) report.Tpg.Atpg.profile.Fsim.Coverage.universe_size;
  Alcotest.(check int) "profile sized to patterns"
    (Array.length report.Tpg.Atpg.patterns)
    report.Tpg.Atpg.profile.Fsim.Coverage.pattern_count;
  (* First-detection indices are within range. *)
  Array.iter
    (function
      | Some k ->
        Alcotest.(check bool) "index in range" true
          (k >= 0 && k < Array.length report.Tpg.Atpg.patterns)
      | None -> ())
    report.Tpg.Atpg.profile.Fsim.Coverage.first_detection

let test_atpg_deterministic () =
  let c = Circuit.Generators.ripple_carry_adder ~bits:4 in
  let universe = Faults.Universe.all c in
  let a = Tpg.Atpg.run c universe in
  let b = Tpg.Atpg.run c universe in
  Alcotest.(check bool) "same patterns" true (a.Tpg.Atpg.patterns = b.Tpg.Atpg.patterns)

let test_atpg_hybrid_cutover () =
  (* A 5-to-32 decoder is the canonical random-pattern-resistant
     circuit: most faults need one specific minterm on the select
     lines.  The hybrid flow must cut the random phase short at the
     statically predicted knee and still reach at least the coverage
     of a pure-random run over the full budget, with fewer patterns. *)
  let c = Circuit.Generators.decoder ~bits:5 in
  let classes = Faults.Collapse.equivalence c (Faults.Universe.all c) in
  let reps = Faults.Collapse.representatives classes in
  let budget = 1024 in
  let config =
    { Tpg.Atpg.default_config with
      random_budget = budget;
      random_target = 1.0;
      hybrid = true;
      resistant_threshold = 0.02 }
  in
  let report = Tpg.Atpg.run ~config c reps in
  (match report.Tpg.Atpg.predicted_cutover with
  | Some n ->
    Alcotest.(check bool) "cutover within budget" true (n >= 0 && n <= budget);
    Alcotest.(check bool) "cutover on a block boundary" true (n mod 64 = 0);
    Alcotest.(check bool) "random phase capped" true
      (report.Tpg.Atpg.random_patterns <= n)
  | None -> Alcotest.fail "hybrid mode must predict a cutover");
  (* Pure-random baseline: same seed family, full budget. *)
  let rng = Stats.Rng.create ~seed:config.Tpg.Atpg.seed () in
  let pure = Tpg.Random_tpg.uniform rng c ~count:budget in
  let pure_profile = Fsim.Coverage.profile c reps pure in
  Alcotest.(check bool) "hybrid coverage >= pure random" true
    (Tpg.Atpg.coverage report >= Fsim.Coverage.final_coverage pure_profile);
  Alcotest.(check bool) "hybrid uses fewer patterns" true
    (Array.length report.Tpg.Atpg.patterns < budget);
  (* Off by default: no cutover is predicted, behaviour unchanged. *)
  let plain = Tpg.Atpg.run c reps in
  Alcotest.(check bool) "predicted_cutover off by default" true
    (plain.Tpg.Atpg.predicted_cutover = None)

let qcheck_props =
  let open QCheck in
  [ Test.make ~count:20 ~name:"podem tests verified by fault simulation"
      (int_range 1 10_000)
      (fun seed ->
        let c =
          Circuit.Generators.random_circuit ~inputs:8 ~gates:80 ~outputs:5 ~seed
        in
        let universe = Faults.Universe.all c in
        let fault = universe.(seed mod Array.length universe) in
        match Tpg.Podem.generate c fault with
        | Tpg.Podem.Test pattern, _ -> verify_test_detects c fault pattern
        | Tpg.Podem.Untestable, _ ->
          not (exhaustively_detectable c fault 8)
        | Tpg.Podem.Aborted, _ -> true) ]

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [ ( "tpg.logic5",
      [ tc "constants" test_logic5_constants;
        tc "ternary tables" test_logic5_ternary_tables;
        tc "D-algebra" test_logic5_d_algebra;
        tc "consistent with boolean planes" test_logic5_consistent_with_bool ] );
    ( "tpg.podem",
      [ tc "c17 sound and complete" test_podem_c17;
        tc "adder sound and complete" test_podem_adder;
        tc "mux sound and complete" test_podem_mux;
        tc "parity sound and complete" test_podem_parity;
        tc "random circuits sound and complete" test_podem_random_circuits;
        tc "proves absorption redundancy" test_podem_finds_redundancy;
        tc "respects backtrack limit" test_podem_respects_backtrack_limit;
        tc "stats populated" test_podem_stats_populated ] );
    ( "tpg.scoap",
      [ tc "inverter chain" test_scoap_inverter_chain;
        tc "and gate rules" test_scoap_and_gate;
        tc "constants saturate" test_scoap_constants_saturate;
        tc "xor controllability" test_scoap_xor_controllability;
        tc "difficulty ranks depth" test_scoap_fault_difficulty_ranks_depth;
        tc "hardest faults sorted" test_scoap_hardest_faults;
        tc "podem guidance preserves verdicts" test_podem_scoap_guidance_same_verdicts;
        tc "saturating add clamps" test_scoap_saturating_add;
        tc "hardest-fault export" test_scoap_export ] );
    ( "tpg.implication_atpg",
      [ tc "c17 sound and complete" test_implication_c17;
        tc "adder sound and complete" test_implication_adder;
        tc "random circuits sound and complete" test_implication_random;
        tc "verdicts agree with podem" test_implication_agrees_with_podem;
        tc "proves redundancy" test_implication_finds_redundancy;
        tc "drives the ATPG flow" test_atpg_with_implication_engine ] );
    ( "tpg.random",
      [ tc "random walk hamming" test_random_walk_shape;
        tc "weighted extremes" test_weighted_extremes;
        tc "until_coverage incremental = fresh" test_until_coverage_reaches_target ] );
    ( "tpg.atpg",
      [ tc "c17 full coverage" test_atpg_full_coverage_small;
        tc "multiplier accounted" test_atpg_multiplier;
        tc "profile consistent" test_atpg_profile_consistent;
        tc "deterministic" test_atpg_deterministic;
        tc "hybrid cutover" test_atpg_hybrid_cutover ] );
    ( "tpg.properties",
      List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_props ) ]
