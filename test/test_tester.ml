(* Tests for the virtual wafer tester. *)

module F = Faults.Fault

(* A small shared rig: circuit, collapsed universe, graded program. *)
let rig =
  lazy
    (let c = Circuit.Generators.ripple_carry_adder ~bits:4 in
     let classes = Faults.Collapse.equivalence c (Faults.Universe.all c) in
     let universe = Faults.Collapse.representatives classes in
     let rng = Stats.Rng.create ~seed:55 () in
     let patterns = Tpg.Random_tpg.uniform rng c ~count:96 in
     let program = Tester.Pattern_set.of_simulation c universe patterns in
     (c, universe, program))

let test_pattern_set_basics () =
  let _, universe, program = Lazy.force rig in
  Alcotest.(check int) "pattern count" 96 (Tester.Pattern_set.pattern_count program);
  let final = Tester.Pattern_set.final_coverage program in
  Alcotest.(check bool) "high random coverage" true (final > 0.9);
  Alcotest.(check bool) "coverage monotone" true
    (Tester.Pattern_set.coverage_after program 10
     <= Tester.Pattern_set.coverage_after program 90);
  ignore universe

let test_first_fail_matches_min () =
  let _, universe, program = Lazy.force rig in
  let first = program.Tester.Pattern_set.profile.Fsim.Coverage.first_detection in
  (* For a known pair of detected faults, first_fail = min of indices. *)
  let detected =
    Array.to_list (Array.mapi (fun i d -> (i, d)) first)
    |> List.filter_map (fun (i, d) -> Option.map (fun k -> (i, k)) d)
  in
  (match detected with
  | (i1, k1) :: (i2, k2) :: _ ->
    Alcotest.(check bool) "min rule" true
      (Tester.Pattern_set.first_fail program [| i1; i2 |] = Some (min k1 k2))
  | _ -> Alcotest.fail "expected detected faults");
  ignore universe

let test_first_fail_undetected_chip_passes () =
  let _, universe, program = Lazy.force rig in
  let first = program.Tester.Pattern_set.profile.Fsim.Coverage.first_detection in
  match
    Array.to_list (Array.mapi (fun i d -> (i, d)) first)
    |> List.find_opt (fun (_, d) -> d = None)
  with
  | Some (i, _) ->
    Alcotest.(check bool) "chip with only undetected fault passes" true
      (Tester.Pattern_set.first_fail program [| i |] = None)
  | None ->
    (* Random patterns caught every collapsed fault; nothing to check. *)
    ();
    ignore universe

let test_pattern_set_make_validation () =
  let c, universe, program = Lazy.force rig in
  ignore universe;
  Alcotest.(check bool) "mismatched profile rejected" true
    (try
       ignore
         (Tester.Pattern_set.make
            (Array.sub program.Tester.Pattern_set.patterns 0 5)
            program.Tester.Pattern_set.profile);
       false
     with Invalid_argument _ -> true);
  ignore c

let make_lot universe_size =
  let rng = Stats.Rng.create ~seed:123 () in
  Fab.Lot.manufacture_ideal ~yield_:0.2 ~n0:4.0 ~universe_size rng ~count:300

let test_lot_testing_consistency () =
  let c, universe, program = Lazy.force rig in
  let lot = make_lot (Array.length universe) in
  let result = Tester.Wafer_test.test_lot c universe program lot in
  Alcotest.(check int) "all chips tested" 300 (Array.length result.Tester.Wafer_test.outcomes);
  (* Apparent yield = true yield + escapes. *)
  let escapes = Tester.Wafer_test.test_escapes result in
  let apparent = Tester.Wafer_test.apparent_yield result in
  let true_good = Fab.Lot.good_count lot in
  Alcotest.(check (float 1e-9)) "accounting"
    (float_of_int (true_good + escapes) /. 300.0)
    apparent;
  (* Cumulative fail counts are monotone in the pattern index. *)
  let prev = ref 0 in
  for k = 0 to result.Tester.Wafer_test.pattern_count do
    let now = Tester.Wafer_test.failed_by result k in
    Alcotest.(check bool) "monotone" true (now >= !prev);
    prev := now
  done;
  (* Good chips never fail. *)
  Array.iter
    (fun outcome ->
      if outcome.Tester.Wafer_test.fault_count = 0 then
        Alcotest.(check bool) "good chip passes" true
          (outcome.Tester.Wafer_test.first_fail = None))
    result.Tester.Wafer_test.outcomes

let test_lot_universe_mismatch_rejected () =
  let c, universe, program = Lazy.force rig in
  let lot = make_lot (Array.length universe + 1) in
  Alcotest.(check bool) "universe mismatch" true
    (try
       ignore (Tester.Wafer_test.test_lot c universe program lot);
       false
     with Invalid_argument _ -> true)

let test_rows_at_coverages () =
  let c, universe, program = Lazy.force rig in
  let lot = make_lot (Array.length universe) in
  let result = Tester.Wafer_test.test_lot c universe program lot in
  let rows =
    Tester.Wafer_test.rows_at_coverages result program ~coverages:[ 0.5; 0.8; 0.9 ]
  in
  List.iter
    (fun row ->
      Alcotest.(check bool) "coverage reached" true
        (row.Tester.Wafer_test.coverage >= 0.5 -. 1e-9);
      Alcotest.(check bool) "fraction consistent" true
        (abs_float
           (row.Tester.Wafer_test.fraction_failed
           -. (float_of_int row.Tester.Wafer_test.cumulative_failed /. 300.0))
         < 1e-9))
    rows;
  (* Unreachable coverage levels are skipped, not fabricated. *)
  let impossible =
    Tester.Wafer_test.rows_at_coverages result program ~coverages:[ 1.1 ]
  in
  Alcotest.(check int) "skip unreachable" 0 (List.length impossible)

let test_rows_at_patterns_monotone () =
  let c, universe, program = Lazy.force rig in
  let lot = make_lot (Array.length universe) in
  let result = Tester.Wafer_test.test_lot c universe program lot in
  let rows =
    Tester.Wafer_test.rows_at_patterns result program ~checkpoints:[ 1; 8; 32; 96 ]
  in
  let rec monotone = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "coverage up" true
        (a.Tester.Wafer_test.coverage <= b.Tester.Wafer_test.coverage +. 1e-12);
      Alcotest.(check bool) "failures up" true
        (a.Tester.Wafer_test.cumulative_failed <= b.Tester.Wafer_test.cumulative_failed);
      monotone rest
    | [ _ ] | [] -> ()
  in
  monotone rows

let test_exact_tester_agrees_on_single_fault_chips () =
  (* For chips with exactly one fault, masking cannot occur, so the
     lookup tester and the exact multi-fault tester must agree. *)
  let c, universe, program = Lazy.force rig in
  let chips =
    Array.init 40 (fun chip_id ->
        { Fab.Lot.chip_id; fault_indices = [| chip_id mod Array.length universe |] })
  in
  let lot = { Fab.Lot.chips; universe_size = Array.length universe } in
  let lookup = Tester.Wafer_test.test_lot ~mode:Tester.Wafer_test.Table_lookup c universe program lot in
  let exact =
    Tester.Wafer_test.test_lot ~mode:Tester.Wafer_test.Exact_multifault c universe program lot
  in
  Array.iteri
    (fun i o ->
      Alcotest.(check bool) "same first fail" true
        (o.Tester.Wafer_test.first_fail
        = exact.Tester.Wafer_test.outcomes.(i).Tester.Wafer_test.first_fail))
    lookup.Tester.Wafer_test.outcomes

let test_exact_tester_multifault_lot_runs () =
  let c, universe, program = Lazy.force rig in
  let lot = make_lot (Array.length universe) in
  let exact =
    Tester.Wafer_test.test_lot ~mode:Tester.Wafer_test.Exact_multifault c universe program lot
  in
  (* Sanity: a defective chip detected by lookup is usually detected by
     the exact tester too; allow masking to create a small gap but both
     testers must reject the vast majority of defective chips. *)
  let defective = 300 - Fab.Lot.good_count lot in
  let rejected =
    Array.fold_left
      (fun acc o -> if o.Tester.Wafer_test.first_fail <> None then acc + 1 else acc)
      0 exact.Tester.Wafer_test.outcomes
  in
  Alcotest.(check bool) "rejects most defective chips" true
    (float_of_int rejected > 0.85 *. float_of_int defective)

let test_empty_lot_rejected () =
  (* Every fraction the tester reports divides by the lot size; an
     empty lot must be rejected up front, not surface as NaN later. *)
  let c, universe, program = Lazy.force rig in
  let lot = { Fab.Lot.chips = [||]; universe_size = Array.length universe } in
  Alcotest.(check bool) "empty lot rejected" true
    (try
       ignore (Tester.Wafer_test.test_lot c universe program lot);
       false
     with Invalid_argument _ -> true)

let test_failed_by_off_by_one () =
  (* first_fail indices are 0-based and failed_by counts first_fail < k:
     a chip failing the very first pattern is counted by k = 1, never
     by k = 0. *)
  let c, universe, program = Lazy.force rig in
  let first = program.Tester.Pattern_set.profile.Fsim.Coverage.first_detection in
  match
    Array.to_list (Array.mapi (fun i d -> (i, d)) first)
    |> List.find_opt (fun (_, d) -> d = Some 0)
  with
  | None -> Alcotest.fail "expected a fault detected at pattern 0"
  | Some (i, _) ->
    let chips = [| { Fab.Lot.chip_id = 0; fault_indices = [| i |] } |] in
    let lot = { Fab.Lot.chips; universe_size = Array.length universe } in
    let result = Tester.Wafer_test.test_lot c universe program lot in
    Alcotest.(check bool) "fails at pattern 0" true
      (result.Tester.Wafer_test.outcomes.(0).Tester.Wafer_test.first_fail = Some 0);
    Alcotest.(check int) "failed_by 0 = 0" 0 (Tester.Wafer_test.failed_by result 0);
    Alcotest.(check int) "failed_by 1 = 1" 1 (Tester.Wafer_test.failed_by result 1);
    Alcotest.(check (float 1e-12)) "fraction at 1" 1.0
      (Tester.Wafer_test.fraction_failed_by result 1)

let test_rows_at_coverages_binary_equals_linear () =
  (* The binary search over the monotone coverage curve must agree with
     the linear-scan definition at every target, including targets that
     hit a curve value exactly. *)
  let c, universe, program = Lazy.force rig in
  let lot = make_lot (Array.length universe) in
  let result = Tester.Wafer_test.test_lot c universe program lot in
  let total = result.Tester.Wafer_test.pattern_count in
  let linear_first target =
    let rec search k =
      if k > total then None
      else if Tester.Pattern_set.coverage_after program k >= target then Some k
      else search (k + 1)
    in
    search 1
  in
  let grid = List.init 101 (fun i -> float_of_int i /. 100.0) in
  let exact_values =
    List.init total (fun k -> Tester.Pattern_set.coverage_after program (k + 1))
  in
  let coverages = grid @ exact_values in
  let rows = Tester.Wafer_test.rows_at_coverages result program ~coverages in
  Alcotest.(check (list int)) "same checkpoints"
    (List.filter_map linear_first coverages)
    (List.map (fun r -> r.Tester.Wafer_test.patterns_applied) rows)

let test_grade_n_detect_validation () =
  let c, universe, program = Lazy.force rig in
  let rejects f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "universe mismatch rejected" true
    (rejects (fun () ->
         Tester.Pattern_set.grade_n_detect ~n:2 c
           (Array.sub universe 0 (Array.length universe - 1))
           program));
  Alcotest.(check bool) "n = 0 rejected" true
    (rejects (fun () -> Tester.Pattern_set.grade_n_detect ~n:0 c universe program));
  Alcotest.(check bool) "ungraded program carries no counts" true
    (Tester.Pattern_set.n_detect program = None);
  let graded = Tester.Pattern_set.grade_n_detect ~n:2 c universe program in
  (match Tester.Pattern_set.n_detect_final_coverage graded with
  | None -> Alcotest.fail "graded program lost its counts"
  | Some f2 ->
    (* Needing a second detection can only lower coverage. *)
    Alcotest.(check bool) "2-detect <= 1-detect" true
      (f2 <= Tester.Pattern_set.final_coverage graded +. 1e-12))

let test_rows_at_n_detect_coverages () =
  let c, universe, program = Lazy.force rig in
  let lot = make_lot (Array.length universe) in
  let result = Tester.Wafer_test.test_lot c universe program lot in
  Alcotest.(check bool) "ungraded program rejected" true
    (try
       ignore
         (Tester.Wafer_test.rows_at_n_detect_coverages result program
            ~coverages:[ 0.5 ]);
       false
     with Invalid_argument _ -> true);
  let graded = Tester.Pattern_set.grade_n_detect ~n:2 c universe program in
  let targets = [ 0.25; 0.5; 0.75 ] in
  let rows =
    Tester.Wafer_test.rows_at_n_detect_coverages result graded ~coverages:targets
  in
  Alcotest.(check int) "all targets reachable" (List.length targets)
    (List.length rows);
  List.iter2
    (fun target row ->
      Alcotest.(check bool) "n-detect target reached" true
        (row.Tester.Wafer_test.coverage >= target -. 1e-9);
      (* The n-detect axis lags the 1-detect axis: the same target
         needs at least as many patterns. *)
      match Tester.Wafer_test.rows_at_coverages result graded ~coverages:[ target ] with
      | [ one ] ->
        Alcotest.(check bool) "n-detect needs >= patterns" true
          (row.Tester.Wafer_test.patterns_applied >= one.Tester.Wafer_test.patterns_applied)
      | _ -> Alcotest.fail "1-detect row missing")
    targets rows

let qcheck_props =
  let open QCheck in
  [ Test.make ~count:60 ~name:"rows_at_coverages binary search = linear scan"
      (pair (int_range 1 60) (int_range 1 40))
      (fun (faults, pattern_count) ->
        (* Synthetic profile with deterministic pseudo-random
           detections; targets include every exact curve value so the
           boundary case (coverage_after k = target) is exercised. *)
        let first_detection =
          Array.init faults (fun i ->
              let h = (i * 2654435761) land 0xFFFF in
              if h mod 3 = 0 then None else Some (h mod pattern_count))
        in
        let profile =
          { Fsim.Coverage.universe_size = faults; pattern_count; first_detection }
        in
        let program = Tester.Pattern_set.make (Array.make pattern_count [||]) profile in
        let result =
          { Tester.Wafer_test.outcomes =
              [| { Tester.Wafer_test.chip_id = 0; fault_count = 0; first_fail = None } |];
            pattern_count;
            lot_size = 1 }
        in
        let linear_first target =
          let rec search k =
            if k > pattern_count then None
            else if Tester.Pattern_set.coverage_after program k >= target then Some k
            else search (k + 1)
          in
          search 1
        in
        let coverages =
          [ 0.0; 0.3; 0.7; 1.0; 1.5 ]
          @ List.init pattern_count (fun k ->
                Tester.Pattern_set.coverage_after program (k + 1))
        in
        let rows = Tester.Wafer_test.rows_at_coverages result program ~coverages in
        List.filter_map linear_first coverages
        = List.map (fun r -> r.Tester.Wafer_test.patterns_applied) rows) ]

(* ----------------------------- signature ----------------------------- *)

let signature_rig =
  lazy
    (let c = Circuit.Generators.alu ~bits:3 in
     let classes = Faults.Collapse.equivalence c (Faults.Universe.all c) in
     let universe = Faults.Collapse.representatives classes in
     let rng = Stats.Rng.create ~seed:2 () in
     let patterns = Tpg.Random_tpg.uniform rng c ~count:64 in
     (c, universe, patterns))

let test_signature_deterministic () =
  let c, _, patterns = Lazy.force signature_rig in
  let misr = Tester.Signature.create ~width:16 in
  Alcotest.(check int64) "reproducible"
    (Tester.Signature.good_signature misr c patterns)
    (Tester.Signature.good_signature misr c patterns)

let test_signature_fault_free_equals_good () =
  (* An undetected fault must produce the good signature. *)
  let c, universe, patterns = Lazy.force signature_rig in
  let misr = Tester.Signature.create ~width:16 in
  let reference = Tester.Signature.good_signature misr c patterns in
  let first = Fsim.Ppsfp.run c universe patterns in
  Array.iteri
    (fun i fault ->
      if first.(i) = None then
        Alcotest.(check int64) "undetected fault, good signature" reference
          (Tester.Signature.faulty_signature misr c fault patterns))
    universe

let test_signature_aliasing_follows_2_pow_w () =
  let c, universe, patterns = Lazy.force signature_rig in
  List.iter
    (fun width ->
      let misr = Tester.Signature.create ~width in
      let r = Tester.Signature.aliasing_study misr c universe patterns in
      Alcotest.(check int) "partition"
        r.Tester.Signature.detected_by_compare
        (r.Tester.Signature.detected_by_signature + r.Tester.Signature.aliased);
      let expected = 2.0 ** float_of_int (-width) in
      Alcotest.(check bool)
        (Printf.sprintf "w=%d rate %.4f ~ %.4f" width
           r.Tester.Signature.aliasing_rate expected)
        true
        (abs_float (r.Tester.Signature.aliasing_rate -. expected) < 3.0 *. expected +. 0.01))
    [ 2; 4; 8 ]

let test_signature_wide_register_no_aliasing () =
  let c, universe, patterns = Lazy.force signature_rig in
  let misr = Tester.Signature.create ~width:32 in
  let r = Tester.Signature.aliasing_study misr c universe patterns in
  Alcotest.(check int) "no aliasing at 32 bits" 0 r.Tester.Signature.aliased

let test_signature_effective_reject () =
  (* Wide registers converge to the pure-compare reject rate; narrow
     ones inflate it. *)
  let pure = Quality.Reject.reject_rate ~yield_:0.07 ~n0:8.0 0.9 in
  let wide =
    Tester.Signature.effective_reject_rate ~yield_:0.07 ~n0:8.0 ~signature_width:48 0.9
  in
  Alcotest.(check (float 1e-6)) "wide = pure" pure wide;
  let narrow =
    Tester.Signature.effective_reject_rate ~yield_:0.07 ~n0:8.0 ~signature_width:4 0.9
  in
  Alcotest.(check bool) "narrow inflates" true (narrow > 10.0 *. pure)

let test_lot_size_study_shrinks_error () =
  let rows = Experiments.Drift.lot_size_study ~lots:25 ~sizes:[ 50; 400 ] () in
  match rows with
  | [ small; large ] ->
    Alcotest.(check bool)
      (Printf.sprintf "rmse %.2f -> %.2f" small.Experiments.Drift.rmse
         large.Experiments.Drift.rmse)
      true
      (large.Experiments.Drift.rmse < small.Experiments.Drift.rmse)
  | _ -> Alcotest.fail "two rows"

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [ ( "tester.pattern_set",
      [ tc "basics" test_pattern_set_basics;
        tc "first_fail = min of detections" test_first_fail_matches_min;
        tc "undetected-only chip passes" test_first_fail_undetected_chip_passes;
        tc "make validation" test_pattern_set_make_validation;
        tc "grade_n_detect validation" test_grade_n_detect_validation ] );
    ( "tester.wafer_test",
      [ tc "lot accounting" test_lot_testing_consistency;
        tc "universe mismatch rejected" test_lot_universe_mismatch_rejected;
        tc "empty lot rejected" test_empty_lot_rejected;
        tc "failed_by counts first_fail < k" test_failed_by_off_by_one;
        tc "rows at coverages" test_rows_at_coverages;
        tc "binary search = linear scan" test_rows_at_coverages_binary_equals_linear;
        tc "rows at n-detect coverages" test_rows_at_n_detect_coverages;
        tc "rows at patterns monotone" test_rows_at_patterns_monotone;
        tc "exact = lookup on single-fault chips" test_exact_tester_agrees_on_single_fault_chips;
        tc "exact tester on multi-fault lot" test_exact_tester_multifault_lot_runs ] );
    ( "tester.properties",
      List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_props );
    ( "tester.signature",
      [ tc "deterministic" test_signature_deterministic;
        tc "undetected fault keeps good signature" test_signature_fault_free_equals_good;
        tc "aliasing follows 2^-w" test_signature_aliasing_follows_2_pow_w;
        tc "wide register, no aliasing" test_signature_wide_register_no_aliasing;
        tc "effective reject rate" test_signature_effective_reject;
        tc "lot-size study shrinks error" test_lot_size_study_shrinks_error ] ) ]
