(* Tests for the static random-pattern testability engine
   (Analysis.Signal_prob + Analysis.Detectability).

   The load-bearing property is *soundness of the bounds*: on every
   generator circuit small enough to enumerate exhaustively, the exact
   signal probability of every line and the exact per-pattern
   detection probability of every stuck-at fault must lie inside the
   statically computed intervals.  Exhaustive enumeration over 2^k
   uniform patterns *is* the uniform distribution, so the measured
   fractions are the true probabilities, not estimates.

   On fanout-free circuits (the parity tree) the analysis claims
   exactness; there the intervals must be points equal to the truth. *)

module N = Circuit.Netlist
module G = Circuit.Generators
module SP = Analysis.Signal_prob
module D = Analysis.Detectability

let eps = 1e-9

let exhaustive_patterns width =
  Array.init (1 lsl width) (fun v ->
      Array.init width (fun i -> (v lsr i) land 1 = 1))

let popcount word =
  let rec loop w acc =
    if w = 0L then acc else loop (Int64.logand w (Int64.sub w 1L)) (acc + 1)
  in
  loop word 0

(* True signal probability of every node: fraction of all 2^k patterns
   with the node at 1. *)
let exact_probabilities c patterns =
  let n = N.num_nodes c in
  let ones = Array.make n 0 in
  List.iter
    (fun block ->
      let values = Logicsim.Packed.eval_block c block in
      let live = Logicsim.Packed.live_mask block in
      for id = 0 to n - 1 do
        ones.(id) <- ones.(id) + popcount (Int64.logand values.(id) live)
      done)
    (Logicsim.Packed.blocks_of_patterns c patterns);
  Array.map
    (fun k -> float_of_int k /. float_of_int (Array.length patterns))
    ones

(* True per-pattern detection probability of every fault: fraction of
   all patterns on which the faulty machine differs at an output. *)
let exact_detections c patterns universe =
  let blocks = Logicsim.Packed.blocks_of_patterns c patterns in
  Array.map
    (fun fault ->
      let count =
        List.fold_left
          (fun acc block ->
            let good = Logicsim.Packed.eval_block c block in
            let good_outputs = Logicsim.Packed.output_words c good in
            acc + popcount (Fsim.Serial.detect_word c ~good_outputs fault block))
          0 blocks
      in
      float_of_int count /. float_of_int (Array.length patterns))
    universe

let workloads () =
  [ ("c17", G.c17 ());
    ("rca:4", G.ripple_carry_adder ~bits:4);
    ("cmp:4", G.comparator ~bits:4);
    ("dec:3", G.decoder ~bits:3);
    ("mux:2", G.mux_tree ~select_bits:2);
    ("parity:8", G.parity_tree ~bits:8);
    ("redundant", G.redundant_demo ());
    ("rand:8,30", G.random_circuit ~inputs:8 ~gates:30 ~outputs:4 ~seed:11);
    ("rand:10,60", G.random_circuit ~inputs:10 ~gates:60 ~outputs:5 ~seed:5) ]

let test_signal_probability_containment () =
  List.iter
    (fun (name, c) ->
      let sp = SP.analyze c in
      let exact = exact_probabilities c (exhaustive_patterns (N.num_inputs c)) in
      Array.iteri
        (fun id p ->
          let i = SP.probability sp id in
          if not (i.SP.lo -. eps <= p && p <= i.SP.hi +. eps) then
            Alcotest.failf "%s node %d: exact %.6f outside [%.6f, %.6f]" name
              id p i.SP.lo i.SP.hi)
        exact)
    (workloads ())

let test_detection_probability_containment () =
  List.iter
    (fun (name, c) ->
      let det = D.analyze (SP.analyze c) in
      let universe = Faults.Universe.all c in
      let patterns = exhaustive_patterns (N.num_inputs c) in
      let exact = exact_detections c patterns universe in
      Array.iteri
        (fun fi d_exact ->
          let i = D.detection det universe.(fi) in
          if not (i.SP.lo -. eps <= d_exact && d_exact <= i.SP.hi +. eps) then
            Alcotest.failf "%s %s: exact %.6f outside [%.6f, %.6f]" name
              (Faults.Fault.to_string c universe.(fi))
              d_exact i.SP.lo i.SP.hi)
        exact)
    (workloads ())

let test_fanout_free_is_exact () =
  let c = G.parity_tree ~bits:8 in
  let sp = SP.analyze c in
  Alcotest.(check bool) "no cuts" true (SP.exact sp);
  let det = D.analyze sp in
  Alcotest.(check bool) "detectability exact" true (D.exact det);
  let universe = Faults.Universe.all c in
  let exact = exact_detections c (exhaustive_patterns 8) universe in
  (* In a parity tree every line is always observable and every
     interval is a point equal to the truth. *)
  Array.iteri
    (fun fi d_exact ->
      let i = D.detection det universe.(fi) in
      Alcotest.(check (float 1e-9)) "zero width" 0.0 (SP.width i);
      Alcotest.(check (float 1e-9)) "point equals truth" d_exact i.SP.lo)
    exact;
  for id = 0 to N.num_nodes c - 1 do
    Alcotest.(check (float 1e-9)) "always observable" 1.0
      (D.observability det id).SP.lo
  done

let test_coverage_band_contains_expected_curve () =
  List.iter
    (fun (name, c) ->
      let det = D.analyze (SP.analyze c) in
      let universe = Faults.Universe.all c in
      let patterns = exhaustive_patterns (N.num_inputs c) in
      let exact = exact_detections c patterns universe in
      let total = float_of_int (Array.length universe) in
      List.iter
        (fun n ->
          let expected =
            Array.fold_left
              (fun acc d -> acc +. (1.0 -. ((1.0 -. d) ** float_of_int n)))
              0.0 exact
            /. total
          in
          let band = D.coverage_band det universe ~patterns:n in
          if not (band.SP.lo -. eps <= expected && expected <= band.SP.hi +. eps)
          then
            Alcotest.failf "%s n=%d: expected coverage %.6f outside [%.6f, %.6f]"
              name n expected band.SP.lo band.SP.hi)
        [ 1; 4; 16; 64; 256 ])
    [ ("c17", G.c17 ()); ("cmp:4", G.comparator ~bits:4);
      ("dec:3", G.decoder ~bits:3);
      ("rand:8,30", G.random_circuit ~inputs:8 ~gates:30 ~outputs:4 ~seed:11) ]

let test_untestable_claims_are_sound () =
  (* d_hi = 0 is a proof that no input pattern detects the fault:
     cross-check against exhaustive simulation. *)
  List.iter
    (fun (name, c) ->
      let det = D.analyze (SP.analyze c) in
      let universe = Faults.Universe.all c in
      let patterns = exhaustive_patterns (N.num_inputs c) in
      let exact = exact_detections c patterns universe in
      let index = Hashtbl.create 16 in
      Array.iteri (fun fi f -> Hashtbl.replace index f fi) universe;
      List.iter
        (fun f ->
          let d = exact.(Hashtbl.find index f) in
          if d > 0.0 then
            Alcotest.failf "%s: %s claimed untestable but detected (d=%.4f)"
              name (Faults.Fault.to_string c f) d)
        (D.untestable det universe))
    (workloads ())

let test_resistant_identification () =
  (* Every decoder output needs all five select bits plus enable at
     fixed values: detection probability 2^-6 < 0.02. *)
  let c = G.decoder ~bits:5 in
  let det = D.analyze (SP.analyze c) in
  let universe = Faults.Universe.all c in
  let resistant = D.resistant det universe ~threshold:0.02 in
  Alcotest.(check bool) "decoder has resistant faults" true
    (List.length resistant > 0);
  List.iter
    (fun (_f, d) ->
      Alcotest.(check bool) "below threshold" true (d.SP.hi < 0.02);
      Alcotest.(check bool) "not provably untestable" true (d.SP.hi > 0.0))
    resistant;
  (* The parity tree has no resistant fault at any sane threshold:
     every fault has detection probability >= 1/2 exactly. *)
  let p = G.parity_tree ~bits:8 in
  let detp = D.analyze (SP.analyze p) in
  Alcotest.(check int) "parity has none" 0
    (List.length (D.resistant detp (Faults.Universe.all p) ~threshold:0.4))

let test_test_length_calculator () =
  (* The decoder has no reconvergent stem, so its guaranteed band
     actually climbs to 1 and minimality can be checked. *)
  let c = G.decoder ~bits:5 in
  let det = D.analyze (SP.analyze c) in
  let universe = Faults.Universe.all c in
  let guaranteed, optimistic =
    D.test_length det universe ~target:0.9 ~max_patterns:65536
  in
  (match (guaranteed, optimistic) with
  | Some g, Some o ->
    Alcotest.(check bool) "optimistic <= guaranteed" true (o <= g);
    let band = D.coverage_band det universe ~patterns:g in
    Alcotest.(check bool) "guaranteed reaches target" true (band.SP.lo >= 0.9);
    if g > 1 then begin
      let before = D.coverage_band det universe ~patterns:(g - 1) in
      Alcotest.(check bool) "minimal" true (before.SP.lo < 0.9)
    end
  | _ -> Alcotest.fail "expected both test lengths to exist");
  let g2, _ = D.test_length det universe ~target:0.5 ~max_patterns:65536 in
  (match (g2, guaranteed) with
  | Some a, Some b -> Alcotest.(check bool) "monotone in target" true (a <= b)
  | _ -> Alcotest.fail "lower target must be reachable");
  (* Unreachable: the comparator's reconvergence pins d_lo = 0 on many
     faults, so its guaranteed band cannot approach 1. *)
  let cmp = G.comparator ~bits:4 in
  let detc = D.analyze (SP.analyze cmp) in
  let unreachable, _ =
    D.test_length detc (Faults.Universe.all cmp) ~target:0.9999
      ~max_patterns:65536
  in
  Alcotest.(check bool) "reconvergent guarantee saturates" true
    (unreachable = None)

let test_cutover () =
  let c = G.comparator ~bits:8 in
  let det = D.analyze (SP.analyze c) in
  let universe = Faults.Universe.all c in
  let n = D.cutover det universe ~block:64 ~max_patterns:512 () in
  Alcotest.(check bool) "within budget" true (n >= 0 && n <= 512);
  Alcotest.(check int) "block multiple" 0 (n mod 64);
  Alcotest.(check int) "huge gain requirement stops immediately" 0
    (D.cutover det universe ~block:64
       ~min_gain:(float_of_int (Array.length universe))
       ~max_patterns:512 ());
  Alcotest.(check int) "zero gain requirement runs to budget" 512
    (D.cutover det universe ~block:64 ~min_gain:0.0 ~max_patterns:512 ())

let test_engine_bundle () =
  let c = G.c17 () in
  let engine = Analysis.Engine.build ~learn_depth:None c in
  let det = Analysis.Engine.detectability engine in
  let sp = Analysis.Engine.prob engine in
  Alcotest.(check bool) "c17 has reconvergence" true (SP.cut_count sp > 0);
  Array.iter
    (fun f ->
      let d = D.detection det f in
      Alcotest.(check bool) "d in unit interval" true
        (d.SP.lo >= 0.0 && d.SP.hi <= 1.0 && d.SP.lo <= d.SP.hi))
    (Faults.Universe.all c)

let suite =
  [ ( "testability",
      [ Alcotest.test_case "signal-probability bounds contain exhaustive truth"
          `Quick test_signal_probability_containment;
        Alcotest.test_case "detection bounds contain exhaustive truth" `Quick
          test_detection_probability_containment;
        Alcotest.test_case "fanout-free circuits are exact" `Quick
          test_fanout_free_is_exact;
        Alcotest.test_case "coverage band contains expected curve" `Quick
          test_coverage_band_contains_expected_curve;
        Alcotest.test_case "static untestability claims are sound" `Quick
          test_untestable_claims_are_sound;
        Alcotest.test_case "resistant-fault identification" `Quick
          test_resistant_identification;
        Alcotest.test_case "test-length calculator" `Quick
          test_test_length_calculator;
        Alcotest.test_case "hybrid cutover prediction" `Quick test_cutover;
        Alcotest.test_case "engine bundles prob + detectability" `Quick
          test_engine_bundle ] ) ]
