(* Tests for the resilient execution layer (lib/robust) and its
   integration points: cancellation tokens, fault injection, crash-safe
   checkpoints, bit-identical resume for the fault simulators, ATPG and
   the lot tester, shard supervision in the multicore engine, and the
   journal's run_end invariant under injected sink failures. *)

module F = Faults.Fault

let tmp_ckpt () = Filename.temp_file "lsiq_test_ckpt" ".json"

let with_tmp f =
  let path = tmp_ckpt () in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

(* Failpoints and the metrics registry are global; leave both clean for
   whichever suite runs next. *)
let with_inject f =
  Robust.Inject.reset ();
  Fun.protect ~finally:Robust.Inject.reset f

let with_metrics f =
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ())
    f

let random_patterns ~seed ~count c =
  let rng = Stats.Rng.create ~seed () in
  Tpg.Random_tpg.uniform rng c ~count

(* ------------------------------------------------------------------ *)
(* Cancellation tokens                                                 *)

let test_cancel_basics () =
  Alcotest.(check bool) "none never fires" false
    (Robust.Cancel.stop_requested Robust.Cancel.none);
  let t = Robust.Cancel.create () in
  Alcotest.(check bool) "fresh token idle" false (Robust.Cancel.stop_requested t);
  Alcotest.(check bool) "no reason yet" true (Robust.Cancel.reason t = None);
  Robust.Cancel.cancel t;
  Alcotest.(check bool) "fires after cancel" true (Robust.Cancel.stop_requested t);
  Alcotest.(check bool) "requested reason" true
    (Robust.Cancel.reason t = Some Robust.Cancel.Requested);
  (* First reason wins. *)
  Robust.Cancel.cancel ~reason:(Robust.Cancel.Signal 2) t;
  Alcotest.(check bool) "first reason wins" true
    (Robust.Cancel.reason t = Some Robust.Cancel.Requested);
  Alcotest.(check bool) "none is not cancellable" true
    (try
       Robust.Cancel.cancel Robust.Cancel.none;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "non-positive deadline rejected" true
    (try
       ignore (Robust.Cancel.create ~deadline_s:0.0 ());
       false
     with Invalid_argument _ -> true)

let test_cancel_deadline_trips () =
  let t = Robust.Cancel.create ~deadline_s:0.005 () in
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec wait () =
    if Robust.Cancel.stop_requested t then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail "deadline token never fired"
    else begin
      ignore (Unix.select [] [] [] 0.002);
      wait ()
    end
  in
  wait ();
  Alcotest.(check bool) "deadline reason" true
    (Robust.Cancel.reason t = Some Robust.Cancel.Deadline)

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)

let test_inject_triggers () =
  with_inject @@ fun () ->
  let fired name = try Robust.Inject.hit name; false with Robust.Inject.Injected n ->
    Alcotest.(check string) "exception names the failpoint" name n;
    true
  in
  Robust.Inject.set "p.nth" (Robust.Inject.At_nth 2);
  Alcotest.(check bool) "nth: 1st hit passes" false (fired "p.nth");
  Alcotest.(check bool) "nth: 2nd hit fires" true (fired "p.nth");
  Alcotest.(check bool) "nth: 3rd hit passes" false (fired "p.nth");
  Alcotest.(check int) "hits counted" 3 (Robust.Inject.hits "p.nth");
  Robust.Inject.set "p.first" (Robust.Inject.First_n 2);
  Alcotest.(check bool) "first: 1st fires" true (fired "p.first");
  Alcotest.(check bool) "first: 2nd fires" true (fired "p.first");
  Alcotest.(check bool) "first: 3rd passes" false (fired "p.first");
  Robust.Inject.clear "p.first";
  Alcotest.(check bool) "cleared point passes" false (fired "p.first");
  (* Unarmed points are free and uncounted. *)
  Robust.Inject.hit "p.unarmed";
  Alcotest.(check int) "unarmed not counted" 0 (Robust.Inject.hits "p.unarmed")

let test_inject_parse_spec () =
  let ok spec =
    match Robust.Inject.parse_spec spec with
    | Ok entries -> entries
    | Error msg -> Alcotest.failf "spec %S rejected: %s" spec msg
  in
  Alcotest.(check bool) "nth entry" true
    (ok "a.b=nth:3" = [ ("a.b", Robust.Inject.At_nth 3) ]);
  Alcotest.(check int) "multi entry" 2 (List.length (ok "a=first:1,b=nth:2"));
  (match ok "x=prob:0.5:7" with
  | [ ("x", Robust.Inject.Probability { p; seed }) ] ->
    Alcotest.(check (float 1e-9)) "prob p" 0.5 p;
    Alcotest.(check int) "prob seed" 7 seed
  | _ -> Alcotest.fail "prob entry shape");
  List.iter
    (fun bad ->
      match Robust.Inject.parse_spec bad with
      | Ok _ -> Alcotest.failf "spec %S accepted" bad
      | Error _ -> ())
    [ "nonsense"; "a=nth:zero"; "a=nth:0"; "a=prob:2.0"; "=nth:1" ]

(* ------------------------------------------------------------------ *)
(* Checkpoint files                                                    *)

let test_checkpoint_roundtrip () =
  with_tmp @@ fun path ->
  let meta =
    Robust.Checkpoint.meta ~kind:"t" ~fields:[ ("n", Report.Json.Int 3) ]
  in
  let payload = [ Report.Json.String "a"; Report.Json.Int 1 ] in
  Robust.Checkpoint.save ~path ~meta ~payload;
  (match Robust.Checkpoint.load ~path with
  | Ok (m, p) ->
    Alcotest.(check bool) "meta preserved" true (m = meta);
    Alcotest.(check bool) "payload preserved" true (p = payload);
    Alcotest.(check bool) "identity validates" true
      (Robust.Checkpoint.validate ~kind:"t"
         ~expect:[ ("n", Report.Json.Int 3) ] m
      = Ok ());
    Alcotest.(check bool) "kind mismatch caught" true
      (Robust.Checkpoint.validate ~kind:"other" ~expect:[] m
       |> Result.is_error);
    Alcotest.(check bool) "field mismatch caught" true
      (Robust.Checkpoint.validate ~kind:"t"
         ~expect:[ ("n", Report.Json.Int 4) ] m
       |> Result.is_error)
  | Error msg -> Alcotest.failf "load failed: %s" msg);
  Alcotest.(check bool) "missing file is Error" true
    (Robust.Checkpoint.load ~path:(path ^ ".does-not-exist") |> Result.is_error)

let test_checkpoint_crash_keeps_previous () =
  with_inject @@ fun () ->
  with_tmp @@ fun path ->
  let meta = Robust.Checkpoint.meta ~kind:"t" ~fields:[] in
  Robust.Checkpoint.save ~path ~meta ~payload:[ Report.Json.Int 1 ];
  Robust.Inject.set "checkpoint.save" (Robust.Inject.First_n 1);
  Alcotest.(check bool) "armed save raises Injected" true
    (try
       Robust.Checkpoint.save ~path ~meta ~payload:[ Report.Json.Int 2 ];
       false
     with Robust.Inject.Injected _ -> true);
  match Robust.Checkpoint.load ~path with
  | Ok (_, [ Report.Json.Int 1 ]) -> ()
  | Ok _ -> Alcotest.fail "previous checkpoint was clobbered"
  | Error msg -> Alcotest.failf "previous checkpoint unreadable: %s" msg

(* ------------------------------------------------------------------ *)
(* Fault-simulation crash + resume                                     *)

let fsim_rig =
  lazy
    (let c = Circuit.Generators.ripple_carry_adder ~bits:4 in
     let universe = Faults.Universe.all c in
     let patterns = random_patterns ~seed:42 ~count:192 c in
     (c, universe, patterns))

let check_restart_bit_identical name engine =
  with_inject @@ fun () ->
  with_tmp @@ fun path ->
  let c, universe, patterns = Lazy.force fsim_rig in
  let baseline = Fsim.Coverage.profile ~engine c universe patterns in
  (* Crash after the first 64-pattern segment is durable... *)
  Robust.Inject.set "fsim.restart.segment" (Robust.Inject.At_nth 1);
  Alcotest.(check bool) (name ^ ": injected crash propagates") true
    (try
       ignore
         (Fsim.Restart.run ~engine ~every:64 ~checkpoint:path ~seed:42 c
            universe patterns);
       false
     with Robust.Inject.Injected _ -> true);
  Robust.Inject.clear "fsim.restart.segment";
  (* ...then resume and demand the uninterrupted answer, bit for bit. *)
  match
    Fsim.Restart.run ~engine ~every:64 ~resume:true ~checkpoint:path ~seed:42 c
      universe patterns
  with
  | Error msg -> Alcotest.failf "%s: resume failed: %s" name msg
  | Ok out ->
    Alcotest.(check bool) (name ^ ": resumed mid-run") true
      (out.Fsim.Restart.resumed_from > 0
      && out.Fsim.Restart.resumed_from < Array.length patterns);
    Alcotest.(check bool) (name ^ ": completed") true out.Fsim.Restart.completed;
    Alcotest.(check bool) (name ^ ": bit-identical profile") true
      (out.Fsim.Restart.profile = baseline)

let test_restart_serial () = check_restart_bit_identical "serial" Fsim.Coverage.Serial
let test_restart_ppsfp () = check_restart_bit_identical "ppsfp" Fsim.Coverage.Parallel

let test_restart_par () =
  check_restart_bit_identical "par" (Fsim.Coverage.Par { domains = 2 })

let test_restart_mismatch_is_error () =
  with_inject @@ fun () ->
  with_tmp @@ fun path ->
  let c, universe, patterns = Lazy.force fsim_rig in
  (match Fsim.Restart.run ~every:64 ~checkpoint:path ~seed:42 c universe patterns with
  | Ok out -> Alcotest.(check bool) "fresh run completes" true out.Fsim.Restart.completed
  | Error msg -> Alcotest.failf "fresh run failed: %s" msg);
  let fewer = Array.sub patterns 0 128 in
  match
    Fsim.Restart.run ~every:64 ~resume:true ~checkpoint:path ~seed:42 c universe
      fewer
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "resume with a different pattern count must be rejected"

let test_par_shard_retry_recovers () =
  with_inject @@ fun () ->
  with_metrics @@ fun () ->
  let c, universe, patterns = Lazy.force fsim_rig in
  let baseline = Fsim.Coverage.profile ~engine:Fsim.Coverage.Parallel c universe patterns in
  Robust.Inject.set "fsim.par.shard" (Robust.Inject.At_nth 2);
  let par =
    Fsim.Coverage.profile ~engine:(Fsim.Coverage.Par { domains = 3 }) c universe
      patterns
  in
  Alcotest.(check bool) "single shard failure recovers bit-identically" true
    (par = baseline);
  Alcotest.(check (option (float 1e-9))) "one retry recorded" (Some 1.0)
    (Obs.Metrics.value "fsim.par.shard_retries")

let test_par_shard_fallback_recovers () =
  with_inject @@ fun () ->
  with_metrics @@ fun () ->
  let c, universe, patterns = Lazy.force fsim_rig in
  let baseline = Fsim.Coverage.profile ~engine:Fsim.Coverage.Parallel c universe patterns in
  (* All three initial shard attempts fail, and the first retry fails
     too: that shard exhausts its retry budget and must fall back to a
     deterministic serial recompute.  The other two recover on retry. *)
  Robust.Inject.set "fsim.par.shard" (Robust.Inject.First_n 4);
  let par =
    Fsim.Coverage.profile ~engine:(Fsim.Coverage.Par { domains = 3 }) c universe
      patterns
  in
  Alcotest.(check bool) "fallback recovers bit-identically" true (par = baseline);
  Alcotest.(check (option (float 1e-9))) "three retries recorded" (Some 3.0)
    (Obs.Metrics.value "fsim.par.shard_retries");
  Alcotest.(check (option (float 1e-9))) "one fallback recorded" (Some 1.0)
    (Obs.Metrics.value "fsim.par.shard_fallbacks")

let test_fsim_cancelled_partial_profile () =
  let c, universe, patterns = Lazy.force fsim_rig in
  let t = Robust.Cancel.create () in
  Robust.Cancel.cancel t;
  let p = Fsim.Coverage.profile ~cancel:t c universe patterns in
  Alcotest.(check int) "universe still sized" (Array.length universe)
    p.Fsim.Coverage.universe_size;
  Alcotest.(check bool) "pre-cancelled run grades nothing" true
    (Array.for_all (fun d -> d = None) p.Fsim.Coverage.first_detection)

(* ------------------------------------------------------------------ *)
(* PODEM / ATPG                                                        *)

let test_podem_precancelled_aborts () =
  let c = Circuit.Generators.c17 () in
  let fault = { F.site = F.Stem 0; polarity = F.Stuck_at_0 } in
  let t = Robust.Cancel.create () in
  Robust.Cancel.cancel t;
  let verdict, stats = Tpg.Podem.generate ~cancel:t c fault in
  Alcotest.(check bool) "aborted, not an exception" true
    (verdict = Tpg.Podem.Aborted);
  Alcotest.(check int) "no search performed" 0 stats.Tpg.Podem.backtracks

let atpg_config =
  (* random_budget = 0 forces every fault through the deterministic
     phase, so the checkpoint actually accumulates per-target state. *)
  { Tpg.Atpg.default_config with random_budget = 0; backtrack_limit = 200 }

let test_atpg_checkpoint_resume_bit_identical () =
  with_inject @@ fun () ->
  with_tmp @@ fun path ->
  let c = Circuit.Generators.ripple_carry_adder ~bits:3 in
  let universe = Faults.Universe.all c in
  let baseline = Tpg.Atpg.run ~config:atpg_config c universe in
  Alcotest.(check int) "uncancelled run has no unknowns" 0
    baseline.Tpg.Atpg.unknown;
  (* Crash on the third snapshot: the first is the upfront save, so the
     checkpoint holds a strict prefix of the deterministic phase. *)
  Robust.Inject.set "checkpoint.save" (Robust.Inject.At_nth 3);
  let ckpt resume = { Tpg.Atpg.path; every = 2; resume } in
  Alcotest.(check bool) "injected crash propagates" true
    (try
       ignore (Tpg.Atpg.run ~config:atpg_config ~checkpoint:(ckpt false) c universe);
       false
     with Robust.Inject.Injected _ -> true);
  Robust.Inject.clear "checkpoint.save";
  let resumed = Tpg.Atpg.run ~config:atpg_config ~checkpoint:(ckpt true) c universe in
  Alcotest.(check bool) "bit-identical report" true (resumed = baseline)

let test_atpg_checkpoint_mismatch_raises () =
  with_inject @@ fun () ->
  with_tmp @@ fun path ->
  let c = Circuit.Generators.ripple_carry_adder ~bits:3 in
  let universe = Faults.Universe.all c in
  let ckpt resume = { Tpg.Atpg.path; every = 4; resume } in
  ignore (Tpg.Atpg.run ~config:atpg_config ~checkpoint:(ckpt false) c universe);
  let other = { atpg_config with seed = atpg_config.Tpg.Atpg.seed + 1 } in
  Alcotest.(check bool) "different seed rejected" true
    (try
       ignore (Tpg.Atpg.run ~config:other ~checkpoint:(ckpt true) c universe);
       false
     with Robust.Checkpoint.Mismatch _ -> true)

let test_atpg_precancelled_counts_unknown () =
  let c = Circuit.Generators.ripple_carry_adder ~bits:3 in
  let universe = Faults.Universe.all c in
  let t = Robust.Cancel.create () in
  Robust.Cancel.cancel t;
  let r = Tpg.Atpg.run ~config:atpg_config ~cancel:t c universe in
  Alcotest.(check int) "no deterministic patterns" 0
    r.Tpg.Atpg.deterministic_patterns;
  Alcotest.(check int) "every target unresolved" (Array.length universe)
    r.Tpg.Atpg.unknown

(* ------------------------------------------------------------------ *)
(* Lot-simulation crash + resume                                       *)

let lot_rig =
  lazy
    (let c = Circuit.Generators.ripple_carry_adder ~bits:4 in
     let classes = Faults.Collapse.equivalence c (Faults.Universe.all c) in
     let universe = Faults.Collapse.representatives classes in
     let rng = Stats.Rng.create ~seed:55 () in
     let patterns = Tpg.Random_tpg.uniform rng c ~count:96 in
     let program = Tester.Pattern_set.of_simulation c universe patterns in
     let lot_rng = Stats.Rng.create ~seed:123 () in
     let lot =
       Fab.Lot.manufacture_ideal ~yield_:0.2 ~n0:4.0
         ~universe_size:(Array.length universe) lot_rng ~count:200
     in
     (c, universe, program, lot))

let test_lot_crash_resume_bit_identical () =
  with_inject @@ fun () ->
  with_tmp @@ fun path ->
  let c, universe, program, lot = Lazy.force lot_rig in
  let baseline = Tester.Wafer_test.test_lot c universe program lot in
  Robust.Inject.set "tester.lot.segment" (Robust.Inject.At_nth 1);
  Alcotest.(check bool) "injected crash propagates" true
    (try
       ignore
         (Tester.Wafer_test.test_lot_restart ~every:64 ~checkpoint:path c
            universe program lot);
       false
     with Robust.Inject.Injected _ -> true);
  Robust.Inject.clear "tester.lot.segment";
  match
    Tester.Wafer_test.test_lot_restart ~every:64 ~resume:true ~checkpoint:path c
      universe program lot
  with
  | Error msg -> Alcotest.failf "resume failed: %s" msg
  | Ok run ->
    Alcotest.(check bool) "resumed mid-lot" true
      (run.Tester.Wafer_test.resumed_from > 0
      && run.Tester.Wafer_test.resumed_from < 200);
    Alcotest.(check bool) "completed" true run.Tester.Wafer_test.completed;
    Alcotest.(check bool) "bit-identical lot result" true
      (Tester.Wafer_test.result_of_run program lot run = baseline)

let test_lot_cancelled_prefix_durable () =
  with_tmp @@ fun path ->
  let c, universe, program, lot = Lazy.force lot_rig in
  let t = Robust.Cancel.create () in
  Robust.Cancel.cancel t;
  (match
     Tester.Wafer_test.test_lot_restart ~cancel:t ~every:16 ~checkpoint:path c
       universe program lot
   with
  | Error msg -> Alcotest.failf "cancelled run errored: %s" msg
  | Ok run ->
    Alcotest.(check bool) "incomplete" false run.Tester.Wafer_test.completed;
    Alcotest.(check int) "no dies tested" 0 run.Tester.Wafer_test.dies_done;
    Alcotest.(check bool) "incomplete run has no result" true
      (try
         ignore (Tester.Wafer_test.result_of_run program lot run);
         false
       with Invalid_argument _ -> true));
  (* The empty prefix is durable and resumable to the full answer. *)
  let baseline = Tester.Wafer_test.test_lot c universe program lot in
  match
    Tester.Wafer_test.test_lot_restart ~every:16 ~resume:true ~checkpoint:path c
      universe program lot
  with
  | Error msg -> Alcotest.failf "resume failed: %s" msg
  | Ok run ->
    Alcotest.(check bool) "resume of cancelled run is bit-identical" true
      (Tester.Wafer_test.result_of_run program lot run = baseline)

(* ------------------------------------------------------------------ *)
(* Journal under failure                                               *)

let test_journal_interrupted_roundtrip () =
  let e =
    Obs.Journal.Run_end
      { t_s = 1.25; outcome = Obs.Journal.Interrupted; results = [] }
  in
  match Obs.Journal.event_of_json (Obs.Journal.event_to_json e) with
  | Ok e' -> Alcotest.(check bool) "roundtrip" true (e = e')
  | Error msg -> Alcotest.failf "roundtrip failed: %s" msg

let count_events events =
  List.fold_left
    (fun (starts, ends) e ->
      match e with
      | Obs.Journal.Run_start _ -> (starts + 1, ends)
      | Obs.Journal.Run_end _ -> (starts, ends + 1)
      | _ -> (starts, ends))
    (0, 0) events

let test_journal_run_end_survives_sink_failure () =
  with_inject @@ fun () ->
  with_tmp @@ fun path ->
  Obs.Journal.set_sink_hook (fun () -> Robust.Inject.hit "journal.sink");
  Fun.protect
    ~finally:(fun () ->
      Obs.Journal.set_sink_hook (fun () -> ());
      Obs.Journal.set_enabled false;
      Obs.Journal.detach ())
  @@ fun () ->
  Obs.Journal.attach ~path;
  Obs.Journal.set_enabled true;
  (* The first sink write — run_start — fails.  The CLI's recovery path
     must still produce exactly one run_end with the right outcome. *)
  Robust.Inject.set "journal.sink" (Robust.Inject.First_n 1);
  Alcotest.(check bool) "sink failure propagates to the emitter" true
    (try
       Obs.Journal.run_start ~argv:[| "test" |] ();
       false
     with Robust.Inject.Injected _ -> true);
  Obs.Journal.run_end ~outcome:Obs.Journal.Interrupted;
  let starts, ends = count_events (Obs.Journal.tail ()) in
  Alcotest.(check int) "exactly one run_start in the ring" 1 starts;
  Alcotest.(check int) "exactly one run_end in the ring" 1 ends;
  (match List.rev (Obs.Journal.tail ()) with
  | Obs.Journal.Run_end { outcome = Obs.Journal.Interrupted; _ } :: _ -> ()
  | _ -> Alcotest.fail "last ring event is not the interrupted run_end");
  Obs.Journal.detach ();
  (* The file sink missed the failed write but holds the run_end. *)
  match Obs.Journal.read_file path with
  | Error msg -> Alcotest.failf "journal file unreadable: %s" msg
  | Ok events ->
    let starts, ends = count_events events in
    Alcotest.(check int) "file lost the failed run_start write" 0 starts;
    Alcotest.(check int) "file holds exactly one run_end" 1 ends

(* ------------------------------------------------------------------ *)
(* Hardened .bench parsing: the bad-file corpus                        *)

let corpus_path file =
  List.find Sys.file_exists
    [ Filename.concat "bad_bench" file; Filename.concat "test/bad_bench" file ]

let test_bad_bench_corpus () =
  (* file, expected 1-based line of the parse error *)
  let cases =
    [ ("truncated.bench", 3);
      ("trailing_garbage.bench", 3);
      ("non_ascii.bench", 3);
      ("bad_name.bench", 2);
      ("dup_output.bench", 3);
      ("dup_define.bench", 5);
      ("bad_arity.bench", 4);
      ("empty.bench", 1);
      ("empty_arg.bench", 3);
      ("unknown_gate.bench", 3);
      ("undefined_signal.bench", 3) ]
  in
  List.iter
    (fun (file, expect_line) ->
      match Circuit.Bench_format.parse_file (corpus_path file) with
      | _ -> Alcotest.failf "%s was accepted" file
      | exception Circuit.Bench_format.Parse_error { line; _ } ->
        Alcotest.(check int) (file ^ " error line") expect_line line
      | exception e ->
        Alcotest.failf "%s escaped with a raw exception: %s" file
          (Printexc.to_string e))
    cases

let test_crlf_bench_accepted () =
  let c = Circuit.Bench_format.parse_file (corpus_path "crlf_ok.bench") in
  Alcotest.(check int) "one input" 1 (Array.length c.Circuit.Netlist.inputs);
  Alcotest.(check int) "one output" 1 (Array.length c.Circuit.Netlist.outputs)

let test_bench_fanin_cap () =
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf "OUTPUT(g)\n";
  for i = 1 to 4097 do
    Buffer.add_string buf (Printf.sprintf "INPUT(i%d)\n" i)
  done;
  Buffer.add_string buf "g = AND(";
  for i = 1 to 4097 do
    if i > 1 then Buffer.add_string buf ", ";
    Buffer.add_string buf (Printf.sprintf "i%d" i)
  done;
  Buffer.add_string buf ")\n";
  Alcotest.(check bool) "4097-input gate rejected" true
    (try
       ignore (Circuit.Bench_format.parse_string (Buffer.contents buf));
       false
     with Circuit.Bench_format.Parse_error { line = 4099; _ } -> true)

let test_bench_const_roundtrip_still_parses () =
  let src = "INPUT(a)\nOUTPUT(b)\nz = CONST0()\nb = OR(a, z)\n" in
  let c = Circuit.Bench_format.parse_string src in
  let c2 = Circuit.Bench_format.parse_string (Circuit.Bench_format.to_string c) in
  Alcotest.(check string) "printed form stable"
    (Circuit.Bench_format.to_string c)
    (Circuit.Bench_format.to_string c2)

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [ ( "robust.cancel",
      [ tc "token basics" test_cancel_basics;
        tc "deadline trips" test_cancel_deadline_trips ] );
    ( "robust.inject",
      [ tc "triggers" test_inject_triggers;
        tc "spec parsing" test_inject_parse_spec ] );
    ( "robust.checkpoint",
      [ tc "save/load/validate" test_checkpoint_roundtrip;
        tc "crashed save keeps previous" test_checkpoint_crash_keeps_previous ] );
    ( "robust.fsim",
      [ tc "serial crash+resume bit-identical" test_restart_serial;
        tc "ppsfp crash+resume bit-identical" test_restart_ppsfp;
        tc "par crash+resume bit-identical" test_restart_par;
        tc "mismatched resume rejected" test_restart_mismatch_is_error;
        tc "par shard retry recovers" test_par_shard_retry_recovers;
        tc "par shard fallback recovers" test_par_shard_fallback_recovers;
        tc "cancelled profile is empty prefix" test_fsim_cancelled_partial_profile ] );
    ( "robust.atpg",
      [ tc "pre-cancelled podem aborts" test_podem_precancelled_aborts;
        tc "checkpoint resume bit-identical" test_atpg_checkpoint_resume_bit_identical;
        tc "mismatched resume raises" test_atpg_checkpoint_mismatch_raises;
        tc "pre-cancelled run counts unknown" test_atpg_precancelled_counts_unknown ] );
    ( "robust.lot",
      [ tc "crash+resume bit-identical" test_lot_crash_resume_bit_identical;
        tc "cancelled prefix durable" test_lot_cancelled_prefix_durable ] );
    ( "robust.journal",
      [ tc "interrupted roundtrip" test_journal_interrupted_roundtrip;
        tc "run_end survives sink failure" test_journal_run_end_survives_sink_failure ] );
    ( "robust.bench",
      [ tc "bad-file corpus" test_bad_bench_corpus;
        tc "crlf accepted" test_crlf_bench_accepted;
        tc "fanin cap" test_bench_fanin_cap;
        tc "const roundtrip" test_bench_const_roundtrip_still_parses ] ) ]
