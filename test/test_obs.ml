(* Tests for the observability subsystem (lib/obs): span tracer and
   metrics registry, their JSON exports, and the determinism of the
   recorded span tree at a fixed seed. *)

(* Every test leaves the global tracer/registry disabled and empty so
   suites that run after this one see the default (no-op) behaviour. *)
let with_obs f =
  Obs.Trace.reset ();
  Obs.Metrics.reset ();
  Obs.Trace.set_enabled true;
  Obs.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.set_enabled false;
      Obs.Metrics.set_enabled false;
      Obs.Trace.reset ();
      Obs.Metrics.reset ())
    f

let span_names () = List.map (fun s -> s.Obs.Trace.name) (Obs.Trace.spans ())

let test_disabled_records_nothing () =
  Obs.Trace.reset ();
  Obs.Metrics.reset ();
  Alcotest.(check bool) "tracing off" false (Obs.Trace.enabled ());
  let r = Obs.Trace.with_span "ghost" (fun () -> Obs.Trace.add "n" 1.0; 42) in
  Alcotest.(check int) "with_span is transparent" 42 r;
  Alcotest.(check int) "no spans recorded" 0 (List.length (Obs.Trace.spans ()));
  Obs.Metrics.incr "ghost.count";
  Alcotest.(check bool) "no metric recorded" true
    (Obs.Metrics.value "ghost.count" = None)

let test_nesting_and_counters () =
  with_obs @@ fun () ->
  let r =
    Obs.Trace.with_span "outer" (fun () ->
        Obs.Trace.add_int "work" 3;
        Obs.Trace.with_span "inner" (fun () -> Obs.Trace.add "w" 0.5);
        Obs.Trace.add_int "work" 4;
        "done")
  in
  Alcotest.(check string) "return value" "done" r;
  match Obs.Trace.spans () with
  | [ outer; inner ] ->
    Alcotest.(check string) "outer name" "outer" outer.Obs.Trace.name;
    Alcotest.(check string) "inner name" "inner" inner.Obs.Trace.name;
    Alcotest.(check int) "outer depth" 0 outer.Obs.Trace.depth;
    Alcotest.(check int) "inner depth" 1 inner.Obs.Trace.depth;
    Alcotest.(check int) "outer is root" (-1) outer.Obs.Trace.parent;
    Alcotest.(check int) "inner's parent is outer" outer.Obs.Trace.seq
      inner.Obs.Trace.parent;
    Alcotest.(check bool) "outer closed after open" true
      (outer.Obs.Trace.t1 >= outer.Obs.Trace.t0);
    Alcotest.(check bool) "inner within outer" true
      (inner.Obs.Trace.t0 >= outer.Obs.Trace.t0
      && inner.Obs.Trace.t1 <= outer.Obs.Trace.t1);
    Alcotest.(check (float 1e-9)) "counter accumulates" 7.0
      (List.assoc "work" outer.Obs.Trace.counters);
    Alcotest.(check (float 1e-9)) "inner counter" 0.5
      (List.assoc "w" inner.Obs.Trace.counters)
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_span_closes_on_exception () =
  with_obs @@ fun () ->
  (try Obs.Trace.with_span "boom" (fun () -> failwith "expected") with
  | Failure _ -> ());
  match Obs.Trace.spans () with
  | [ s ] ->
    Alcotest.(check string) "span recorded" "boom" s.Obs.Trace.name;
    Alcotest.(check bool) "span closed" true (s.Obs.Trace.t1 >= s.Obs.Trace.t0)
  | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans)

let test_reset_clears () =
  with_obs @@ fun () ->
  Obs.Trace.with_span "a" ignore;
  Alcotest.(check int) "one span" 1 (List.length (Obs.Trace.spans ()));
  Obs.Trace.reset ();
  Alcotest.(check int) "reset drops spans" 0 (List.length (Obs.Trace.spans ()));
  Obs.Trace.with_span "b" ignore;
  Alcotest.(check (list string)) "recording continues after reset" [ "b" ]
    (span_names ())

let test_metrics_kinds () =
  with_obs @@ fun () ->
  Obs.Metrics.incr "m.count";
  Obs.Metrics.incr ~by:2.5 "m.count";
  Alcotest.(check (option (float 1e-9))) "counter total" (Some 3.5)
    (Obs.Metrics.value "m.count");
  Obs.Metrics.set "m.gauge" 1.0;
  Obs.Metrics.set "m.gauge" 9.0;
  Alcotest.(check (option (float 1e-9))) "gauge keeps last" (Some 9.0)
    (Obs.Metrics.value "m.gauge");
  List.iter (fun v -> Obs.Metrics.observe "m.hist" v) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  Alcotest.(check (option (float 1e-9))) "histogram median" (Some 3.0)
    (Obs.Metrics.quantile "m.hist" 0.5);
  Alcotest.(check (option (float 1e-9))) "histogram max" (Some 5.0)
    (Obs.Metrics.quantile "m.hist" 1.0);
  Alcotest.(check bool) "kind mismatch rejected" true
    (try
       Obs.Metrics.set "m.count" 1.0;
       false
     with Invalid_argument _ -> true)

let test_metrics_snapshot_json () =
  with_obs @@ fun () ->
  Obs.Metrics.incr "a.count";
  Obs.Metrics.set "b.gauge" 2.0;
  Obs.Metrics.observe "c.hist" 1.0;
  let text = Report.Json.to_string (Obs.Metrics.snapshot ()) in
  match Report.Json.parse text with
  | Error message -> Alcotest.failf "snapshot does not parse: %s" message
  | Ok (Report.Json.Obj fields) ->
    Alcotest.(check (list string)) "sorted metric names"
      [ "a.count"; "b.gauge"; "c.hist" ]
      (List.map fst fields)
  | Ok _ -> Alcotest.fail "snapshot is not an object"

let tiny_circuit () =
  Circuit.Generators.random_circuit ~inputs:10 ~gates:120 ~outputs:6 ~seed:3

let test_par_trace_has_shard_spans () =
  let circuit = tiny_circuit () in
  let universe =
    Faults.Collapse.representatives
      (Faults.Collapse.equivalence circuit (Faults.Universe.all circuit))
  in
  let patterns =
    Tpg.Random_tpg.uniform (Stats.Rng.create ~seed:5 ()) circuit ~count:64
  in
  with_obs @@ fun () ->
  ignore (Fsim.Par.run ~domains:2 circuit universe patterns);
  let names = span_names () in
  List.iter
    (fun required ->
      Alcotest.(check bool) (required ^ " present") true (List.mem required names))
    [ "fsim.par"; "fsim.par.prepare"; "fsim.par.shard[0]"; "fsim.par.shard[1]" ];
  let tids =
    List.sort_uniq compare (List.map (fun s -> s.Obs.Trace.tid) (Obs.Trace.spans ()))
  in
  Alcotest.(check (list int)) "two dense domain ids" [ 0; 1 ] tids;
  (* The trace export must itself be valid JSON that our parser accepts. *)
  match Report.Json.parse (Report.Json.to_string (Obs.Trace.to_chrome_json ())) with
  | Error message -> Alcotest.failf "chrome trace does not parse: %s" message
  | Ok (Report.Json.Obj fields) ->
    Alcotest.(check bool) "has traceEvents" true
      (List.mem_assoc "traceEvents" fields)
  | Ok _ -> Alcotest.fail "chrome trace is not an object"

(* Acceptance: span tree *shape* (names and nesting; timestamps and
   counters ignored) must be identical across runs of the same seeded
   workload, including the multicore shard spans. *)
let pipeline_shape () =
  let config =
    { Experiments.Pipeline.default_config with
      scale = 4;
      lot_size = 12;
      fsim_engine = Fsim.Coverage.Par { domains = 2 } }
  in
  with_obs @@ fun () ->
  ignore (Experiments.Pipeline.execute config);
  Obs.Trace.tree_shape ()

let test_tree_shape_deterministic () =
  let shape1 = pipeline_shape () in
  let shape2 = pipeline_shape () in
  Alcotest.(check bool) "shape non-trivial" true
    (String.length shape1 > 0
    && List.exists
         (fun line ->
           line = "d0   pipeline.execute" || line = "d0 pipeline.execute")
         (String.split_on_char '\n' shape1));
  Alcotest.(check string) "identical shape across runs" shape1 shape2

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [ ( "obs",
      [ tc "disabled records nothing" test_disabled_records_nothing;
        tc "nesting and counters" test_nesting_and_counters;
        tc "span closes on exception" test_span_closes_on_exception;
        tc "reset clears" test_reset_clears;
        tc "metrics kinds" test_metrics_kinds;
        tc "metrics snapshot json" test_metrics_snapshot_json;
        tc "par trace has shard spans" test_par_trace_has_shard_spans;
        tc "tree shape deterministic" test_tree_shape_deterministic ] ) ]
