(* Tests for the observability subsystem (lib/obs): span tracer and
   metrics registry, their JSON exports, and the determinism of the
   recorded span tree at a fixed seed. *)

(* Every test leaves the global tracer/registry disabled and empty so
   suites that run after this one see the default (no-op) behaviour. *)
let with_obs f =
  Obs.Trace.reset ();
  Obs.Metrics.reset ();
  Obs.Trace.set_enabled true;
  Obs.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.set_enabled false;
      Obs.Metrics.set_enabled false;
      Obs.Trace.reset ();
      Obs.Metrics.reset ())
    f

let span_names () = List.map (fun s -> s.Obs.Trace.name) (Obs.Trace.spans ())

let test_disabled_records_nothing () =
  Obs.Trace.reset ();
  Obs.Metrics.reset ();
  Alcotest.(check bool) "tracing off" false (Obs.Trace.enabled ());
  let r = Obs.Trace.with_span "ghost" (fun () -> Obs.Trace.add "n" 1.0; 42) in
  Alcotest.(check int) "with_span is transparent" 42 r;
  Alcotest.(check int) "no spans recorded" 0 (List.length (Obs.Trace.spans ()));
  Obs.Metrics.incr "ghost.count";
  Alcotest.(check bool) "no metric recorded" true
    (Obs.Metrics.value "ghost.count" = None)

let test_nesting_and_counters () =
  with_obs @@ fun () ->
  let r =
    Obs.Trace.with_span "outer" (fun () ->
        Obs.Trace.add_int "work" 3;
        Obs.Trace.with_span "inner" (fun () -> Obs.Trace.add "w" 0.5);
        Obs.Trace.add_int "work" 4;
        "done")
  in
  Alcotest.(check string) "return value" "done" r;
  match Obs.Trace.spans () with
  | [ outer; inner ] ->
    Alcotest.(check string) "outer name" "outer" outer.Obs.Trace.name;
    Alcotest.(check string) "inner name" "inner" inner.Obs.Trace.name;
    Alcotest.(check int) "outer depth" 0 outer.Obs.Trace.depth;
    Alcotest.(check int) "inner depth" 1 inner.Obs.Trace.depth;
    Alcotest.(check int) "outer is root" (-1) outer.Obs.Trace.parent;
    Alcotest.(check int) "inner's parent is outer" outer.Obs.Trace.seq
      inner.Obs.Trace.parent;
    Alcotest.(check bool) "outer closed after open" true
      (outer.Obs.Trace.t1 >= outer.Obs.Trace.t0);
    Alcotest.(check bool) "inner within outer" true
      (inner.Obs.Trace.t0 >= outer.Obs.Trace.t0
      && inner.Obs.Trace.t1 <= outer.Obs.Trace.t1);
    Alcotest.(check (float 1e-9)) "counter accumulates" 7.0
      (List.assoc "work" outer.Obs.Trace.counters);
    Alcotest.(check (float 1e-9)) "inner counter" 0.5
      (List.assoc "w" inner.Obs.Trace.counters)
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_span_closes_on_exception () =
  with_obs @@ fun () ->
  (try Obs.Trace.with_span "boom" (fun () -> failwith "expected") with
  | Failure _ -> ());
  match Obs.Trace.spans () with
  | [ s ] ->
    Alcotest.(check string) "span recorded" "boom" s.Obs.Trace.name;
    Alcotest.(check bool) "span closed" true (s.Obs.Trace.t1 >= s.Obs.Trace.t0)
  | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans)

let test_reset_clears () =
  with_obs @@ fun () ->
  Obs.Trace.with_span "a" ignore;
  Alcotest.(check int) "one span" 1 (List.length (Obs.Trace.spans ()));
  Obs.Trace.reset ();
  Alcotest.(check int) "reset drops spans" 0 (List.length (Obs.Trace.spans ()));
  Obs.Trace.with_span "b" ignore;
  Alcotest.(check (list string)) "recording continues after reset" [ "b" ]
    (span_names ())

let test_metrics_kinds () =
  with_obs @@ fun () ->
  Obs.Metrics.incr "m.count";
  Obs.Metrics.incr ~by:2.5 "m.count";
  Alcotest.(check (option (float 1e-9))) "counter total" (Some 3.5)
    (Obs.Metrics.value "m.count");
  Obs.Metrics.set "m.gauge" 1.0;
  Obs.Metrics.set "m.gauge" 9.0;
  Alcotest.(check (option (float 1e-9))) "gauge keeps last" (Some 9.0)
    (Obs.Metrics.value "m.gauge");
  List.iter (fun v -> Obs.Metrics.observe "m.hist" v) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  Alcotest.(check (option (float 1e-9))) "histogram median" (Some 3.0)
    (Obs.Metrics.quantile "m.hist" 0.5);
  Alcotest.(check (option (float 1e-9))) "histogram max" (Some 5.0)
    (Obs.Metrics.quantile "m.hist" 1.0);
  Alcotest.(check bool) "kind mismatch rejected" true
    (try
       Obs.Metrics.set "m.count" 1.0;
       false
     with Invalid_argument _ -> true)

let test_metrics_snapshot_json () =
  with_obs @@ fun () ->
  Obs.Metrics.incr "a.count";
  Obs.Metrics.set "b.gauge" 2.0;
  Obs.Metrics.observe "c.hist" 1.0;
  let text = Report.Json.to_string (Obs.Metrics.snapshot ()) in
  match Report.Json.parse text with
  | Error message -> Alcotest.failf "snapshot does not parse: %s" message
  | Ok (Report.Json.Obj fields) ->
    Alcotest.(check (list string)) "sorted metric names"
      [ "a.count"; "b.gauge"; "c.hist" ]
      (List.map fst fields)
  | Ok _ -> Alcotest.fail "snapshot is not an object"

let tiny_circuit () =
  Circuit.Generators.random_circuit ~inputs:10 ~gates:120 ~outputs:6 ~seed:3

let test_par_trace_has_shard_spans () =
  let circuit = tiny_circuit () in
  let universe =
    Faults.Collapse.representatives
      (Faults.Collapse.equivalence circuit (Faults.Universe.all circuit))
  in
  let patterns =
    Tpg.Random_tpg.uniform (Stats.Rng.create ~seed:5 ()) circuit ~count:64
  in
  with_obs @@ fun () ->
  ignore (Fsim.Par.run ~domains:2 circuit universe patterns);
  let names = span_names () in
  List.iter
    (fun required ->
      Alcotest.(check bool) (required ^ " present") true (List.mem required names))
    [ "fsim.par"; "fsim.par.prepare"; "fsim.par.shard[0]"; "fsim.par.shard[1]" ];
  let tids =
    List.sort_uniq compare (List.map (fun s -> s.Obs.Trace.tid) (Obs.Trace.spans ()))
  in
  Alcotest.(check (list int)) "two dense domain ids" [ 0; 1 ] tids;
  (* The trace export must itself be valid JSON that our parser accepts. *)
  match Report.Json.parse (Report.Json.to_string (Obs.Trace.to_chrome_json ())) with
  | Error message -> Alcotest.failf "chrome trace does not parse: %s" message
  | Ok (Report.Json.Obj fields) ->
    Alcotest.(check bool) "has traceEvents" true
      (List.mem_assoc "traceEvents" fields)
  | Ok _ -> Alcotest.fail "chrome trace is not an object"

(* Acceptance: span tree *shape* (names and nesting; timestamps and
   counters ignored) must be identical across runs of the same seeded
   workload, including the multicore shard spans. *)
let pipeline_shape () =
  let config =
    { Experiments.Pipeline.default_config with
      scale = 4;
      lot_size = 12;
      fsim_engine = Fsim.Coverage.Par { domains = 2 } }
  in
  with_obs @@ fun () ->
  ignore (Experiments.Pipeline.execute config);
  Obs.Trace.tree_shape ()

let test_tree_shape_deterministic () =
  let shape1 = pipeline_shape () in
  let shape2 = pipeline_shape () in
  Alcotest.(check bool) "shape non-trivial" true
    (String.length shape1 > 0
    && List.exists
         (fun line ->
           line = "d0   pipeline.execute" || line = "d0 pipeline.execute")
         (String.split_on_char '\n' shape1));
  Alcotest.(check string) "identical shape across runs" shape1 shape2

(* ------------------------------ clock ------------------------------ *)

(* The tracer/progress clock must never run backwards, monotonic stub
   or gettimeofday fallback alike (the fallback is CAS-monotonized). *)
let test_clock_never_backwards () =
  let check_mono name now =
    let prev = ref (now ()) in
    for i = 1 to 10_000 do
      let t = now () in
      if t < !prev then
        Alcotest.failf "%s went backwards at call %d: %.17g < %.17g" name i t
          !prev;
      prev := t
    done
  in
  check_mono "Clock.now_s" Obs.Clock.now_s;
  check_mono "Trace.now_s" Obs.Trace.now_s

(* --------------------------- histograms ---------------------------- *)

let test_histogram_quantile_edges () =
  with_obs @@ fun () ->
  (* n = 1: every quantile is the lone sample. *)
  Obs.Metrics.observe "one.hist" 7.0;
  List.iter
    (fun q ->
      Alcotest.(check (option (float 1e-9)))
        (Printf.sprintf "n=1 q=%g" q)
        (Some 7.0)
        (Obs.Metrics.quantile "one.hist" q))
    [ 0.0; 0.5; 0.9; 0.99; 1.0 ];
  (* All-equal samples: quantiles collapse to the common value. *)
  for _ = 1 to 10 do Obs.Metrics.observe "flat.hist" 3.0 done;
  List.iter
    (fun q ->
      Alcotest.(check (option (float 1e-9)))
        (Printf.sprintf "all-equal q=%g" q)
        (Some 3.0)
        (Obs.Metrics.quantile "flat.hist" q))
    [ 0.5; 0.99 ]

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_histogram_reservoir_label () =
  with_obs @@ fun () ->
  for i = 1 to 5000 do
    Obs.Metrics.observe "big.hist" (float_of_int i)
  done;
  (match Obs.Metrics.snapshot () with
  | Report.Json.Obj [ ("big.hist", Report.Json.Obj fields) ] ->
    Alcotest.(check bool) "count is total" true
      (List.assoc "count" fields = Report.Json.Int 5000);
    Alcotest.(check bool) "reservoir is capped" true
      (List.assoc "reservoir" fields = Report.Json.Int 4096);
    Alcotest.(check bool) "p99 present and numeric" true
      (match List.assoc "p99" fields with
      | Report.Json.Float _ -> true
      | _ -> false)
  | _ -> Alcotest.fail "unexpected snapshot shape");
  let text = Obs.Metrics.render_text () in
  Alcotest.(check bool) "render labels the reservoir" true
    (contains "(quantiles over 4096/5000 samples)" text)

(* ---------------------------- GC deltas ---------------------------- *)

(* with_gc_delta accumulates as counters: a second call with the same
   prefix adds its churn instead of overwriting the first call's. *)
let test_gc_delta_accumulates () =
  with_obs @@ fun () ->
  (* Many small allocations (blocks past Max_young_wosize would go
     straight to the major heap), then a forced minor collection:
     quick_stat's allocation totals only refresh at GC points. *)
  let churn () =
    for i = 1 to 10_000 do
      ignore (Sys.opaque_identity (ref i))
    done;
    Gc.minor ()
  in
  Obs.Metrics.with_gc_delta "gc.test" churn;
  let first =
    match Obs.Metrics.value "gc.test.minor_words" with
    | Some v -> v
    | None -> Alcotest.fail "minor_words counter missing"
  in
  Alcotest.(check bool) "first call counts churn" true (first > 0.0);
  Obs.Metrics.with_gc_delta "gc.test" churn;
  let second =
    match Obs.Metrics.value "gc.test.minor_words" with
    | Some v -> v
    | None -> Alcotest.fail "minor_words counter missing after second call"
  in
  Alcotest.(check bool) "second call accumulates" true
    (second >= first +. 1000.0)

(* ----------------------------- journal ----------------------------- *)

let with_journal f =
  Obs.Journal.reset ();
  Obs.Journal.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Journal.set_enabled false;
      Obs.Journal.detach ();
      Obs.Journal.reset ();
      Obs.Progress.set_enabled false;
      Obs.Progress.configure ~interval_s:0.5 ~printer:None ())
    f

let emit_sample_events () =
  Obs.Journal.run_start ~argv:[| "lsiq"; "test" |] ~seed:42 ~circuit:"c17" ();
  Obs.Journal.progress ~label:"fsim.test" ~task:1 ~items:64 ~total:128
    ~rate:12.5 ~eta_s:5.125 ();
  Obs.Journal.progress ~label:"pipeline" ~stage:"atpg" ~task:0 ~items:4
    ~total:9 ~rate:0.0 ();
  Obs.Journal.metrics_snapshot
    (Report.Json.Obj [ ("x.count", Report.Json.Int 1) ]);
  Obs.Journal.headline "coverage" (Report.Json.Float 0.875);
  Obs.Journal.headline "coverage" (Report.Json.Float 0.9);
  Obs.Journal.run_end ~outcome:(Obs.Journal.Failed "boom")

let test_journal_event_roundtrip () =
  with_journal @@ fun () ->
  emit_sample_events ();
  let events = Obs.Journal.tail () in
  Alcotest.(check int) "five events" 5 (List.length events);
  List.iteri
    (fun i e ->
      match Obs.Journal.event_of_json (Obs.Journal.event_to_json e) with
      | Ok e' ->
        Alcotest.(check bool)
          (Printf.sprintf "event %d round-trips" i)
          true (e = e')
      | Error message -> Alcotest.failf "event %d: %s" i message)
    events;
  (* The repeated headline key replaced the earlier value in place. *)
  match List.rev events with
  | Obs.Journal.Run_end { outcome = Obs.Journal.Failed "boom"; results; _ } :: _
    ->
    Alcotest.(check bool) "headline replaced in place" true
      (List.assoc_opt "coverage" results = Some (Report.Json.Float 0.9)
      && List.length results = 1)
  | _ -> Alcotest.fail "last event is not the failed run_end"

let test_journal_file_roundtrip () =
  let path = Filename.temp_file "lsiq_journal" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  (with_journal @@ fun () ->
   Obs.Journal.attach ~path;
   emit_sample_events ());
  match Obs.Journal.read_file path with
  | Error message -> Alcotest.failf "journal does not re-parse: %s" message
  | Ok events ->
    Alcotest.(check int) "five events on disk" 5 (List.length events);
    let starts =
      List.filter
        (function Obs.Journal.Run_start _ -> true | _ -> false)
        events
    in
    let ends =
      List.filter (function Obs.Journal.Run_end _ -> true | _ -> false) events
    in
    Alcotest.(check int) "one run_start" 1 (List.length starts);
    Alcotest.(check int) "one run_end" 1 (List.length ends);
    Alcotest.(check bool) "run_start first, run_end last" true
      ((match events with Obs.Journal.Run_start _ :: _ -> true | _ -> false)
      &&
      match List.rev events with
      | Obs.Journal.Run_end _ :: _ -> true
      | _ -> false);
    (* A summary of the parsed stream renders and names the pieces. *)
    let summary = Obs.Journal.render_summary events in
    List.iter
      (fun needle ->
        Alcotest.(check bool) ("summary mentions " ^ needle) true
          (contains needle summary))
      [ "lsiq test"; "c17"; "fsim.test"; "boom" ]

(* Unthrottled journal streams from a single-threaded loop are
   deterministic at fixed seed, and items never go backwards. *)
let journaled_serial_fsim () =
  with_journal @@ fun () ->
  Obs.Progress.configure ~interval_s:0.0 ~printer:None ();
  Obs.Progress.set_enabled true;
  let circuit = tiny_circuit () in
  let universe =
    Faults.Collapse.representatives
      (Faults.Collapse.equivalence circuit (Faults.Universe.all circuit))
  in
  let patterns =
    Tpg.Random_tpg.uniform (Stats.Rng.create ~seed:5 ()) circuit ~count:192
  in
  ignore (Fsim.Ppsfp.run circuit universe patterns);
  List.filter_map
    (function
      | Obs.Journal.Progress { label; items; total; _ } ->
        Some (label, items, total)
      | _ -> None)
    (Obs.Journal.tail ())

let test_journal_progress_deterministic () =
  let stream1 = journaled_serial_fsim () in
  let stream2 = journaled_serial_fsim () in
  Alcotest.(check bool) "stream non-empty" true (stream1 <> []);
  let monotone =
    let ok = ref true in
    let prev = ref (-1) in
    List.iter
      (fun (_, items, _) ->
        if items < !prev then ok := false;
        prev := items)
      stream1;
    !ok
  in
  Alcotest.(check bool) "items monotone" true monotone;
  Alcotest.(check bool) "identical across runs" true (stream1 = stream2)

(* ----------------------- disabled-path costs ----------------------- *)

(* With every obs subsystem off, stepping a progress task must not
   allocate: 100k steps may move the minor-heap counter only by the
   handful of words the measurement itself boxes, never by a per-step
   amount. *)
let test_disabled_progress_allocates_nothing () =
  Alcotest.(check bool) "progress disabled" false (Obs.Progress.enabled ());
  let t = Obs.Progress.start ~label:"ghost" ~total:1_000_000 () in
  let before = Gc.minor_words () in
  for _ = 1 to 100_000 do
    Obs.Progress.step t 1
  done;
  let delta = Gc.minor_words () -. before in
  Alcotest.(check bool)
    (Printf.sprintf "no per-step allocation (delta %.0f words)" delta)
    true (delta < 64.0)

(* ----------------------------- history ----------------------------- *)

let bench_doc ?(cores = 4) ~min_s ~coverage () =
  Report.Json.Obj
    [ ( "host",
        Report.Json.Obj
          [ ("cores", Report.Json.Int cores);
            ("ocaml_version", Report.Json.String "5.1.1");
            ("word_size", Report.Json.Int 64) ] );
      ( "runs",
        Report.Json.List
          [ Report.Json.Obj
              [ ("engine", Report.Json.String "ppsfp");
                ("domains", Report.Json.Int 1);
                ("min_s", Report.Json.Float min_s);
                ("faults", Report.Json.Int 100);
                ("patterns", Report.Json.Int 64) ] ] );
      ( "ndetect",
        Report.Json.List
          [ Report.Json.Obj
              [ ("n", Report.Json.Int 1);
                ("min_s", Report.Json.Float 0.01);
                ("coverage", Report.Json.Float coverage) ] ] ) ]

let test_history_compare () =
  let doc = bench_doc ~min_s:0.01 ~coverage:0.95 () in
  (* Identical documents: nothing regresses. *)
  let rows = Obs.History.compare_docs ~baseline:doc ~current:doc () in
  Alcotest.(check bool) "rows non-empty" true (rows <> []);
  Alcotest.(check int) "identical docs clean" 0
    (List.length (Obs.History.regressions rows));
  (* A 5x slowdown well past the absolute floor regresses, by name. *)
  let slow = bench_doc ~min_s:0.05 ~coverage:0.95 () in
  let rows = Obs.History.compare_docs ~baseline:doc ~current:slow () in
  (match Obs.History.regressions rows with
  | [ r ] ->
    Alcotest.(check string) "block named" "runs/ppsfp@d1" r.Obs.History.r_block;
    Alcotest.(check string) "metric named" "min_s" r.Obs.History.r_name;
    Alcotest.(check bool) "verdict Slower" true
      (r.Obs.History.r_verdict = Obs.History.Slower)
  | rs -> Alcotest.failf "expected 1 regression, got %d" (List.length rs));
  (* Same ratio on a sub-floor block: timing noise, not a regression. *)
  let tiny = bench_doc ~min_s:0.0002 ~coverage:0.95 () in
  let tiny_slow = bench_doc ~min_s:0.001 ~coverage:0.95 () in
  let rows = Obs.History.compare_docs ~baseline:tiny ~current:tiny_slow () in
  Alcotest.(check int) "sub-floor jitter tolerated" 0
    (List.length (Obs.History.regressions rows));
  (* Exact metrics flag on any change. *)
  let drift = bench_doc ~min_s:0.01 ~coverage:0.951 () in
  let rows = Obs.History.compare_docs ~baseline:doc ~current:drift () in
  match Obs.History.regressions rows with
  | [ r ] ->
    Alcotest.(check string) "coverage block" "ndetect/n=1" r.Obs.History.r_block;
    Alcotest.(check bool) "verdict Changed" true
      (r.Obs.History.r_verdict = Obs.History.Changed)
  | rs -> Alcotest.failf "expected 1 changed metric, got %d" (List.length rs)

let test_history_append_load () =
  let path = Filename.temp_file "lsiq_history" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Sys.remove path;
  (match Obs.History.load path with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "missing file should be an empty history"
  | Error message -> Alcotest.failf "missing file errored: %s" message);
  let doc1 = bench_doc ~min_s:0.01 ~coverage:0.95 () in
  let doc2 = bench_doc ~min_s:0.02 ~coverage:0.95 () in
  Obs.History.append ~path (Obs.History.entry ~time_unix:1.0 doc1);
  Obs.History.append ~path (Obs.History.entry ~time_unix:2.0 doc2);
  match Obs.History.load path with
  | Error message -> Alcotest.failf "history does not load: %s" message
  | Ok entries ->
    Alcotest.(check int) "two entries" 2 (List.length entries);
    let docs = List.filter_map Obs.History.doc_of_entry entries in
    Alcotest.(check bool) "docs survive the round-trip" true
      (docs = [ doc1; doc2 ]);
    Alcotest.(check string) "host key" "cores=4 ocaml=5.1.1 word=64"
      (Obs.History.host_key doc1)

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [ ( "obs",
      [ tc "disabled records nothing" test_disabled_records_nothing;
        tc "nesting and counters" test_nesting_and_counters;
        tc "span closes on exception" test_span_closes_on_exception;
        tc "reset clears" test_reset_clears;
        tc "metrics kinds" test_metrics_kinds;
        tc "metrics snapshot json" test_metrics_snapshot_json;
        tc "par trace has shard spans" test_par_trace_has_shard_spans;
        tc "tree shape deterministic" test_tree_shape_deterministic;
        tc "clock never backwards" test_clock_never_backwards;
        tc "histogram quantile edges" test_histogram_quantile_edges;
        tc "histogram reservoir label" test_histogram_reservoir_label;
        tc "gc delta accumulates" test_gc_delta_accumulates;
        tc "journal event roundtrip" test_journal_event_roundtrip;
        tc "journal file roundtrip" test_journal_file_roundtrip;
        tc "journal progress deterministic" test_journal_progress_deterministic;
        tc "disabled progress allocates nothing"
          test_disabled_progress_allocates_nothing;
        tc "history compare" test_history_compare;
        tc "history append load" test_history_append_load ] ) ]
