(* Tests for the lint subsystem.

   The load-bearing property is soundness: every fault the static
   analysis flags untestable must truly be undetectable, which we check
   by exhaustively simulating every input vector on small circuits.  On
   the redundant_demo reference circuit we additionally demand
   completeness — the flagged set equals the exhaustively undetectable
   set — and that excluding it restores coverage 1.0. *)

module F = Faults.Fault
module N = Circuit.Netlist

let exhaustive_patterns width =
  Array.init (1 lsl width) (fun v ->
      Array.init width (fun i -> (v lsr i) land 1 = 1))

(* Ground truth: the set of faults no input vector detects, by
   exhaustive serial fault simulation. *)
let undetectable_exhaustive c universe =
  let patterns = exhaustive_patterns (N.num_inputs c) in
  let profile =
    Fsim.Coverage.profile ~engine:Fsim.Coverage.Serial c universe patterns
  in
  let set = Hashtbl.create 16 in
  Array.iteri
    (fun i d -> if d = None then Hashtbl.replace set universe.(i) ())
    profile.Fsim.Coverage.first_detection;
  set

let check_sound name c =
  let universe = Faults.Universe.all c in
  let truth = undetectable_exhaustive c universe in
  let classes = Faults.Collapse.equivalence c universe in
  List.iter
    (fun (variant, flagged) ->
      Array.iter
        (fun (fault, reason) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s (%s): %s flagged %s must be undetectable" name
               variant (F.to_string c fault)
               (Lint.Testability.reason_to_string reason))
            true
            (Hashtbl.mem truth fault))
        flagged)
    [ ("plain", Lint.Testability.untestable c universe);
      ("crosschecked", Lint.Testability.untestable ~classes c universe) ]

let test_soundness_generators () =
  check_sound "c17" (Circuit.Generators.c17 ());
  check_sound "rca3" (Circuit.Generators.ripple_carry_adder ~bits:3);
  check_sound "mux2" (Circuit.Generators.mux_tree ~select_bits:1);
  check_sound "redundant" (Circuit.Generators.redundant_demo ())

let test_soundness_random () =
  (* Random DAGs accumulate duplicated fanins and dead cones, the same
     degeneracies real synthesis leaves behind. *)
  for seed = 1 to 6 do
    check_sound
      (Printf.sprintf "rand seed %d" seed)
      (Circuit.Generators.random_circuit ~inputs:6 ~gates:24 ~outputs:3 ~seed)
  done

let test_redundant_demo_complete () =
  (* On the reference circuit the proofs are also complete: flagged set
     = exhaustively undetectable set, exactly. *)
  let c = Circuit.Generators.redundant_demo () in
  let universe = Faults.Universe.all c in
  let truth = undetectable_exhaustive c universe in
  let classes = Faults.Collapse.equivalence c universe in
  let flagged = Lint.Testability.untestable_faults ~classes c universe in
  let flagged_set = Hashtbl.create 16 in
  Array.iter (fun f -> Hashtbl.replace flagged_set f ()) flagged;
  Alcotest.(check int) "18 untestable of 54" 18 (Array.length flagged);
  Alcotest.(check int) "universe is 54" 54 (Array.length universe);
  Array.iter
    (fun fault ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: flagged iff undetectable" (F.to_string c fault))
        (Hashtbl.mem truth fault)
        (Hashtbl.mem flagged_set fault))
    universe

let test_corrected_coverage_reaches_one () =
  (* Acceptance: raw coverage saturates below 1.0, the
     redundancy-corrected figure reaches exactly 1.0. *)
  let c = Circuit.Generators.redundant_demo () in
  let universe = Faults.Universe.all c in
  let untestable = Lint.Testability.untestable_faults c universe in
  let patterns = exhaustive_patterns (N.num_inputs c) in
  let profile = Fsim.Coverage.profile c universe patterns in
  let raw = Fsim.Coverage.final_coverage profile in
  Alcotest.(check bool) "raw coverage < 1" true (raw < 1.0);
  Alcotest.(check (float 1e-9)) "raw = 36/54" (36.0 /. 54.0) raw;
  let corrected = Fsim.Coverage.excluding profile ~universe ~untestable in
  Alcotest.(check int) "corrected universe" 36
    corrected.Fsim.Coverage.universe_size;
  Alcotest.(check (float 1e-9)) "corrected coverage = 1" 1.0
    (Fsim.Coverage.final_coverage corrected);
  (* Same answer when the universe is filtered before simulation. *)
  let kept = Faults.Universe.exclude_untestable universe ~untestable in
  let profile2 = Fsim.Coverage.profile c kept patterns in
  Alcotest.(check (float 1e-9)) "pre-filtered coverage = 1" 1.0
    (Fsim.Coverage.final_coverage profile2)

let test_coverage_excluding_validates () =
  let c = Circuit.Generators.redundant_demo () in
  let universe = Faults.Universe.all c in
  let profile = Fsim.Coverage.profile c universe (exhaustive_patterns 5) in
  Alcotest.check_raises "length mismatch rejected"
    (Invalid_argument "Coverage.excluding: universe does not match profile")
    (fun () ->
      ignore
        (Fsim.Coverage.excluding profile
           ~universe:(Array.sub universe 0 10)
           ~untestable:[||]))

let test_exclude_untestable_semantics () =
  let c = Circuit.Generators.c17 () in
  let universe = Faults.Universe.all c in
  let sa0 = universe.(0) and sa1 = universe.(1) in
  let kept = Faults.Universe.exclude_untestable universe ~untestable:[| sa1 |] in
  Alcotest.(check int) "one removed" (Array.length universe - 1)
    (Array.length kept);
  Alcotest.(check bool) "order preserved, head intact" true (kept.(0) = sa0);
  Alcotest.(check bool) "removed fault gone" false (Array.exists (( = ) sa1) kept);
  (* Faults absent from the universe are ignored: excluding a
     collapsed-away fault from the collapsed universe is a no-op. *)
  let collapsed =
    Faults.Collapse.representatives (Faults.Collapse.equivalence c universe)
  in
  let absent =
    Array.to_list universe
    |> List.find (fun f -> not (Array.exists (( = ) f) collapsed))
  in
  let kept2 =
    Faults.Universe.exclude_untestable collapsed ~untestable:[| absent |]
  in
  Alcotest.(check int) "absent faults ignored" (Array.length collapsed)
    (Array.length kept2);
  Alcotest.(check bool) "empty exclusion is identity" true
    (Faults.Universe.exclude_untestable universe ~untestable:[||] == universe)

let test_sampling_exclude () =
  let c = Circuit.Generators.redundant_demo () in
  let universe = Faults.Universe.all c in
  let untestable = Lint.Testability.untestable_faults c universe in
  let patterns = exhaustive_patterns (N.num_inputs c) in
  let rng = Stats.Rng.create ~seed:7 () in
  let est =
    Fsim.Sampling.estimate_coverage ~exclude:untestable rng c universe
      ~sample_size:10_000 patterns
  in
  Alcotest.(check int) "corrected universe sampled" 36
    est.Fsim.Sampling.universe_size;
  Alcotest.(check (float 1e-9)) "full-sample corrected coverage" 1.0
    est.Fsim.Sampling.coverage

let test_ternary_identities () =
  let b = N.Builder.create ~name:"identities" in
  let x = N.Builder.add_input b "x" in
  let nx = N.Builder.add_gate b ~name:"nx" Circuit.Gate.Not [ x ] in
  let xor_xx = N.Builder.add_gate b ~name:"xor_xx" Circuit.Gate.Xor [ x; x ] in
  let and_xnx = N.Builder.add_gate b ~name:"and_xnx" Circuit.Gate.And [ x; nx ] in
  let or_xnx = N.Builder.add_gate b ~name:"or_xnx" Circuit.Gate.Or [ x; nx ] in
  let or_xx = N.Builder.add_gate b ~name:"or_xx" Circuit.Gate.Or [ x; x ] in
  let xnor_xx = N.Builder.add_gate b ~name:"xnor_xx" Circuit.Gate.Xnor [ x; x ] in
  List.iter (N.Builder.mark_output b)
    [ xor_xx; and_xnx; or_xnx; or_xx; xnor_xx ];
  let c = N.Builder.build b in
  let t = Lint.Ternary.analyze c in
  let const id = Lint.Ternary.const_value t id in
  Alcotest.(check (option bool)) "XOR(x,x) = 0" (Some false) (const xor_xx);
  Alcotest.(check (option bool)) "AND(x,~x) = 0" (Some false) (const and_xnx);
  Alcotest.(check (option bool)) "OR(x,~x) = 1" (Some true) (const or_xnx);
  Alcotest.(check (option bool)) "XNOR(x,x) = 1" (Some true) (const xnor_xx);
  (match Lint.Ternary.value t or_xx with
  | Lint.Ternary.Lit { src; inv } ->
    Alcotest.(check int) "OR(x,x) = x" x src;
    Alcotest.(check bool) "OR(x,x) not inverted" false inv
  | Lint.Ternary.Const _ -> Alcotest.fail "OR(x,x) is not constant");
  (match Lint.Ternary.value t nx with
  | Lint.Ternary.Lit { src; inv } ->
    Alcotest.(check int) "NOT x tracks x" x src;
    Alcotest.(check bool) "NOT x inverted" true inv
  | Lint.Ternary.Const _ -> Alcotest.fail "NOT x is not constant")

let test_structural_rules_fire () =
  let c = Circuit.Generators.redundant_demo () in
  let report = Lint.Driver.run c in
  let rules =
    List.sort_uniq compare
      (List.map (fun d -> d.Lint.Diagnostic.rule) report.Lint.Driver.diagnostics)
  in
  List.iter
    (fun rule ->
      Alcotest.(check bool) (rule ^ " fires on redundant_demo") true
        (List.mem rule rules))
    [ "constant-net"; "dead-logic"; "floating-input"; "duplicate-fanin";
      "untestable-fault"; "fanout-stats"; "reconvergence" ];
  Alcotest.(check int) "driver untestable count matches" 18
    (Array.length report.Lint.Driver.untestable);
  (* A clean circuit stays clean of warnings. *)
  let clean = Lint.Driver.run (Circuit.Generators.ripple_carry_adder ~bits:4) in
  Alcotest.(check int) "rca4 has no errors" 0 clean.Lint.Driver.errors;
  Alcotest.(check int) "rca4 has no warnings" 0 clean.Lint.Driver.warnings

let test_constant_output_is_error () =
  let b = N.Builder.create ~name:"const_out" in
  let x = N.Builder.add_input b "x" in
  let y = N.Builder.add_gate b ~name:"y" Circuit.Gate.Xor [ x; x ] in
  N.Builder.mark_output b y;
  let c = N.Builder.build b in
  let report = Lint.Driver.run c in
  Alcotest.(check bool) "constant-output error" true
    (List.exists
       (fun d ->
         d.Lint.Diagnostic.rule = "constant-output"
         && d.Lint.Diagnostic.severity = Lint.Diagnostic.Error)
       report.Lint.Driver.diagnostics);
  Alcotest.(check bool) "worst severity is Error" true
    (Lint.Driver.worst_severity report = Some Lint.Diagnostic.Error)

let test_cycle_path_reported () =
  (* A combinational loop in a .bench file must be reported as the full
     loop path, not a single node. *)
  let text =
    "INPUT(a)\nOUTPUT(y)\nb = AND(a, d)\nc = NOT(b)\nd = OR(c, a)\ny = NOT(d)\n"
  in
  match Circuit.Bench_format.parse_string text with
  | exception N.Cycle path ->
    let nodes = String.split_on_char ' ' path in
    let nodes = List.filter (fun s -> s <> "->" && s <> "") nodes in
    Alcotest.(check bool) "path has >= 4 entries" true (List.length nodes >= 4);
    let first = List.hd nodes and last = List.nth nodes (List.length nodes - 1) in
    Alcotest.(check string) "path closes on itself" first last;
    List.iter
      (fun n ->
        Alcotest.(check bool)
          (Printf.sprintf "%s is on the loop" n)
          true
          (List.mem n [ "b"; "c"; "d" ]))
      nodes
  | (_ : N.t) -> Alcotest.fail "cyclic bench text must raise Netlist.Cycle"

let test_undefined_signal_still_rejected () =
  (* The cycle walk must not misreport genuinely undefined signals. *)
  let text = "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n" in
  match Circuit.Bench_format.parse_string text with
  | exception Circuit.Bench_format.Parse_error { message; _ } ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
      at 0
    in
    Alcotest.(check bool) "mentions the undefined signal" true
      (contains message "ghost")
  | (_ : N.t) -> Alcotest.fail "undefined signal must be a parse error"

let test_json_rendering () =
  let open Report.Json in
  Alcotest.(check string) "escaping"
    {|{"s":"a\"b\n\u0007"}|}
    (to_string (Obj [ ("s", String "a\"b\n\007") ]));
  Alcotest.(check string) "float keeps a decimal point" "1.0"
    (to_string (Float 1.0));
  Alcotest.(check string) "float round-trips" "0.1"
    (to_string (Float 0.1));
  Alcotest.(check string) "non-finite is null" "null"
    (to_string (Float nan));
  Alcotest.(check string) "nesting"
    {|{"a":[1,true,null],"b":{}}|}
    (to_string (Obj [ ("a", List [ Int 1; Bool true; Null ]); ("b", Obj []) ]));
  (* The lint report is valid enough JSON for a line-based smoke check:
     balanced braces and a summary block. *)
  let report = Lint.Driver.run (Circuit.Generators.redundant_demo ()) in
  let text = to_string_pretty (Lint.Driver.render_json report) in
  let count ch = String.fold_left (fun n c -> if c = ch then n + 1 else n) 0 text in
  Alcotest.(check int) "balanced braces" (count '{') (count '}');
  Alcotest.(check int) "balanced brackets" (count '[') (count ']')

let test_pipeline_exclusion () =
  let config =
    { Experiments.Pipeline.default_config with
      Experiments.Pipeline.scale = 4; lot_size = 12;
      exclude_untestable = true }
  in
  let run = Experiments.Pipeline.execute config in
  let raw = Experiments.Pipeline.raw_coverage run in
  let corrected = Tester.Pattern_set.final_coverage run.Experiments.Pipeline.program in
  Alcotest.(check bool) "raw <= corrected" true (raw <= corrected +. 1e-12);
  (* The working universe must contain no proven-untestable fault. *)
  Array.iter
    (fun fault ->
      Alcotest.(check bool) "excluded fault absent from universe" false
        (Array.exists (( = ) fault) run.Experiments.Pipeline.universe))
    run.Experiments.Pipeline.untestable

let suite =
  [ ( "lint",
      [ Alcotest.test_case "soundness on generators" `Quick
          test_soundness_generators;
        Alcotest.test_case "soundness on random circuits" `Quick
          test_soundness_random;
        Alcotest.test_case "redundant_demo flagged = undetectable" `Quick
          test_redundant_demo_complete;
        Alcotest.test_case "corrected coverage reaches 1.0" `Quick
          test_corrected_coverage_reaches_one;
        Alcotest.test_case "Coverage.excluding validates input" `Quick
          test_coverage_excluding_validates;
        Alcotest.test_case "Universe.exclude_untestable semantics" `Quick
          test_exclude_untestable_semantics;
        Alcotest.test_case "Sampling honours ~exclude" `Quick
          test_sampling_exclude;
        Alcotest.test_case "ternary identities" `Quick test_ternary_identities;
        Alcotest.test_case "structural rules fire" `Quick
          test_structural_rules_fire;
        Alcotest.test_case "constant output is an error" `Quick
          test_constant_output_is_error;
        Alcotest.test_case "cycle reported as full path" `Quick
          test_cycle_path_reported;
        Alcotest.test_case "undefined signal still a parse error" `Quick
          test_undefined_signal_still_rejected;
        Alcotest.test_case "json rendering" `Quick test_json_rendering;
        Alcotest.test_case "pipeline exclusion" `Quick test_pipeline_exclusion
      ] )
  ]
