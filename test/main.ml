let () =
  Alcotest.run "lsi-quality"
    (Test_stats.suite @ Test_circuit.suite @ Test_logicsim.suite @ Test_faults.suite @ Test_fsim.suite @ Test_tpg.suite @ Test_fab.suite @ Test_tester.suite @ Test_quality.suite @ Test_report.suite @ Test_experiments.suite @ Test_diagnosis.suite @ Test_sequential.suite @ Test_lint.suite @ Test_analysis.suite @ Test_testability.suite @ Test_bdd.suite @ Test_obs.suite @ Test_robust.suite)
