(* Tests for the static-analysis engine (lib/analysis).

   Three properties carry the subsystem:

   - dominators are *exact*: on every small circuit the computed
     chains equal the intersection of all brute-force-enumerated
     source-to-output paths;
   - the implication graph is sound and closed: learning terminates at
     a fixpoint, every implication has its contrapositive, and every
     fault the analysis proves untestable is exhaustively
     undetectable;
   - dominance collapsing loses nothing: any test set complete for the
     dominating faults detects every dropped fault, and coverage over
     the collapsed universe reads 1.0 where the raw figure already
     saturates. *)

module F = Faults.Fault
module N = Circuit.Netlist
module ISet = Set.Make (Int)

let exhaustive_patterns width =
  Array.init (1 lsl width) (fun v ->
      Array.init width (fun i -> (v lsr i) land 1 = 1))

let id_of c name =
  let found = ref (-1) in
  Array.iteri (fun i n -> if n = name then found := i) c.N.node_names;
  if !found < 0 then failwith ("no node named " ^ name);
  !found

(* ------------------------------------------------------------------ *)
(* Dominators vs brute-force path enumeration. *)

(* Every path from [n]'s stem to a primary output, as a node set
   (including [n] and the output).  Exponential, fine on <=12 gates. *)
let brute_dominators c n =
  let is_po = Array.make (N.num_nodes c) false in
  Array.iter (fun o -> is_po.(o) <- true) c.N.outputs;
  let paths = ref [] in
  let rec dfs node acc =
    let acc = ISet.add node acc in
    if is_po.(node) then paths := acc :: !paths;
    Array.iter (fun m -> dfs m acc) c.N.fanouts.(node)
  in
  dfs n ISet.empty;
  match !paths with
  | [] -> None
  | first :: rest ->
    Some (ISet.remove n (List.fold_left ISet.inter first rest))

let check_dominators_exact name c =
  let dom = Analysis.Dominators.compute c in
  for n = 0 to N.num_nodes c - 1 do
    let computed = Analysis.Dominators.dominators dom n in
    match brute_dominators c n with
    | None ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s unobservable" name c.N.node_names.(n))
        false
        (Analysis.Dominators.observable dom n);
      Alcotest.(check (list int))
        (Printf.sprintf "%s: %s no dominators" name c.N.node_names.(n))
        [] computed
    | Some truth ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s observable" name c.N.node_names.(n))
        true
        (Analysis.Dominators.observable dom n);
      Alcotest.(check (list int))
        (Printf.sprintf "%s: %s dominator set" name c.N.node_names.(n))
        (ISet.elements truth)
        (List.sort compare computed);
      (* The chain order promised by the interface: nearest first. *)
      ignore
        (List.fold_left
           (fun level d ->
             Alcotest.(check bool)
               (Printf.sprintf "%s: %s chain is nearest-first" name
                  c.N.node_names.(n))
               true
               (c.N.levels.(d) >= level);
             c.N.levels.(d))
           (-1) computed);
      List.iter
        (fun d ->
          Alcotest.(check bool) "dominates agrees with chain" true
            (Analysis.Dominators.dominates dom d ~over:n))
        computed
  done

let test_dominators_brute_force () =
  check_dominators_exact "c17" (Circuit.Generators.c17 ());
  check_dominators_exact "redundant" (Circuit.Generators.redundant_demo ());
  for seed = 1 to 8 do
    check_dominators_exact
      (Printf.sprintf "rand seed %d" seed)
      (Circuit.Generators.random_circuit ~inputs:5 ~gates:12 ~outputs:3 ~seed)
  done

let test_common_dominators () =
  let c = Circuit.Generators.c17 () in
  let dom = Analysis.Dominators.compute c in
  let g n = id_of c n in
  (* G1 and G10 funnel through G22; G7 and G19 through G23. *)
  Alcotest.(check (list int)) "common of G1,G10" [ g "G22" ]
    (Analysis.Dominators.common_dominators dom [ g "G1"; g "G10" ]);
  Alcotest.(check (list int)) "common of G7,G19" [ g "G23" ]
    (Analysis.Dominators.common_dominators dom [ g "G7"; g "G19" ]);
  (* G16 feeds both outputs, so it has no strict dominators and any
     frontier containing it has no common bottleneck. *)
  Alcotest.(check (list int)) "common of G10,G16" []
    (Analysis.Dominators.common_dominators dom [ g "G10"; g "G16" ]);
  Alcotest.(check (list int)) "common of empty" []
    (Analysis.Dominators.common_dominators dom [])

(* ------------------------------------------------------------------ *)
(* The c17.bench example file is a fixed reference: it must stay in
   sync with Generators.c17 and its analysis facts must not drift. *)

let test_c17_bench_reference () =
  (* cwd is the test directory under `dune runtest`, the workspace root
     under `dune exec`. *)
  let path =
    List.find Sys.file_exists
      [ "../examples/circuits/c17.bench"; "examples/circuits/c17.bench" ]
  in
  let c = Circuit.Bench_format.parse_file path in
  Alcotest.(check string) "file matches Generators.c17"
    (Circuit.Bench_format.to_string (Circuit.Generators.c17 ()))
    (Circuit.Bench_format.to_string c);
  let engine = Analysis.Engine.build ~learn_depth:(Some 2) c in
  let dom = Analysis.Engine.dominators engine in
  let imp = Option.get (Analysis.Engine.implication engine) in
  let chain n = List.map (fun i -> c.N.node_names.(i))
      (Analysis.Dominators.dominators dom (id_of c n))
  in
  List.iter
    (fun (stem, expected) ->
      Alcotest.(check (list string))
        (Printf.sprintf "chain of %s" stem)
        expected (chain stem))
    [ ("G1", [ "G10"; "G22" ]); ("G2", [ "G16" ]); ("G3", []);
      ("G6", [ "G11" ]); ("G7", [ "G19"; "G23" ]); ("G10", [ "G22" ]);
      ("G11", []); ("G16", []); ("G19", [ "G23" ]); ("G22", []);
      ("G23", []) ];
  Alcotest.(check int) "26 implications" 26
    (Analysis.Implication.direct_count imp);
  Alcotest.(check int) "26 learned edges" 26
    (Analysis.Implication.learned_count imp);
  Alcotest.(check bool) "learned contrapositive G23=1 => G11=1" true
    (Analysis.Implication.implies imp (id_of c "G23", true)
       (id_of c "G11", true));
  Alcotest.(check (list (pair int bool))) "no constants" []
    (Analysis.Implication.constants imp);
  Alcotest.(check (list int)) "no contradictions" []
    (Analysis.Implication.contradictory imp)

(* ------------------------------------------------------------------ *)
(* Implication engine: termination, contrapositive closure, learned
   constants. *)

let test_fixpoint_terminates () =
  List.iter
    (fun c ->
      let imp = Analysis.Implication.learn ~depth:1000 c in
      Alcotest.(check bool) "fixpoint reached well before the depth bound"
        true
        (Analysis.Implication.rounds imp < 1000))
    [ Circuit.Generators.c17 ();
      Circuit.Generators.redundant_demo ();
      Circuit.Generators.random_circuit ~inputs:6 ~gates:30 ~outputs:4 ~seed:3 ]

let check_contrapositive_closed name c =
  let imp = Analysis.Implication.learn ~depth:16 c in
  let nodes = N.num_nodes c in
  for a = 0 to nodes - 1 do
    List.iter
      (fun va ->
        if not (Analysis.Implication.infeasible imp a va) then
          match Analysis.Implication.consequences imp a va with
          | None -> ()
          | Some consequences ->
            List.iter
              (fun (b, vb) ->
                if not (Analysis.Implication.infeasible imp b (not vb)) then
                  Alcotest.(check bool)
                    (Printf.sprintf
                       "%s: %s=%b => %s=%b has contrapositive" name
                       c.N.node_names.(a) va c.N.node_names.(b) vb)
                    true
                    (Analysis.Implication.implies imp (b, not vb) (a, not va)))
              consequences)
      [ false; true ]
  done

let test_contrapositive_symmetry () =
  check_contrapositive_closed "c17" (Circuit.Generators.c17 ());
  for seed = 1 to 4 do
    check_contrapositive_closed
      (Printf.sprintf "rand seed %d" seed)
      (Circuit.Generators.random_circuit ~inputs:5 ~gates:10 ~outputs:3 ~seed)
  done

let test_learned_constants_on_redundant_demo () =
  let c = Circuit.Generators.redundant_demo () in
  let imp = Analysis.Implication.learn ~depth:2 c in
  List.iter
    (fun (name, expected) ->
      Alcotest.(check (option bool))
        (Printf.sprintf "%s proved constant" name)
        (Some expected)
        (Analysis.Implication.constant imp (id_of c name)))
    [ ("zero", false); ("blk", false); ("g3", false) ];
  Alcotest.(check (list int)) "no contradictory nodes" []
    (Analysis.Implication.contradictory imp)

let test_engine_without_learning () =
  let c = Circuit.Generators.c17 () in
  let engine = Analysis.Engine.build ~learn_depth:None c in
  Alcotest.(check bool) "implication engine absent" true
    (Analysis.Engine.implication engine = None)

(* ------------------------------------------------------------------ *)
(* Soundness of the analysis-strengthened lint proofs: every fault
   flagged with the engine attached must be exhaustively
   undetectable. *)

let undetectable_exhaustive c universe =
  let patterns = exhaustive_patterns (N.num_inputs c) in
  let profile =
    Fsim.Coverage.profile ~engine:Fsim.Coverage.Serial c universe patterns
  in
  let set = Hashtbl.create 16 in
  Array.iteri
    (fun i d -> if d = None then Hashtbl.replace set universe.(i) ())
    profile.Fsim.Coverage.first_detection;
  set

let check_analysis_lint_sound name c =
  let universe = Faults.Universe.all c in
  let truth = undetectable_exhaustive c universe in
  let classes = Faults.Collapse.equivalence c universe in
  let analysis = Analysis.Engine.build ~learn_depth:(Some 2) c in
  let flagged = Lint.Testability.untestable ~classes ~analysis c universe in
  Array.iter
    (fun (fault, reason) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s flagged %s must be undetectable" name
           (F.to_string c fault)
           (Lint.Testability.reason_to_string reason))
        true
        (Hashtbl.mem truth fault))
    flagged;
  (* Attaching the engine must never lose a proof the plain linter has. *)
  let plain = Lint.Testability.untestable ~classes c universe in
  Alcotest.(check bool)
    (Printf.sprintf "%s: analysis proofs superset of plain" name)
    true
    (Array.length flagged >= Array.length plain)

let test_analysis_lint_soundness () =
  check_analysis_lint_sound "redundant" (Circuit.Generators.redundant_demo ());
  check_analysis_lint_sound "c17" (Circuit.Generators.c17 ());
  for seed = 1 to 6 do
    check_analysis_lint_sound
      (Printf.sprintf "rand seed %d" seed)
      (Circuit.Generators.random_circuit ~inputs:6 ~gates:24 ~outputs:3 ~seed)
  done

(* ------------------------------------------------------------------ *)
(* Dominance collapsing. *)

(* The property the collapse rests on: any test detecting a dominating
   fault also detects the dropped fault — so first detection of the
   dropped fault can never come later. *)
let check_dominance_drops name c patterns =
  let universe = Faults.Universe.all c in
  let classes = Faults.Collapse.equivalence c universe in
  let profile = Fsim.Coverage.profile c universe patterns in
  let index = Hashtbl.create 64 in
  Array.iteri (fun i f -> Hashtbl.replace index f i) universe;
  let detection f =
    profile.Fsim.Coverage.first_detection.(Hashtbl.find index f)
  in
  let drops = Faults.Collapse.dominance_drops c classes in
  Alcotest.(check bool) (name ^ ": some classes dropped") true (drops <> []);
  List.iter
    (fun (dropped, dominators) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s has dominating faults" name
           (F.to_string c dropped))
        true (dominators <> []);
      List.iter
        (fun dominator ->
          match detection dominator with
          | None -> ()
          | Some k -> (
            match detection dropped with
            | Some j ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: %s detected no later than %s" name
                   (F.to_string c dropped)
                   (F.to_string c dominator))
                true (j <= k)
            | None ->
              Alcotest.failf "%s: %s detected but dropped %s never" name
                (F.to_string c dominator)
                (F.to_string c dropped)))
        dominators)
    drops

let test_dominance_drop_property () =
  let c17 = Circuit.Generators.c17 () in
  check_dominance_drops "c17" c17 (exhaustive_patterns (N.num_inputs c17));
  for seed = 1 to 5 do
    let c =
      Circuit.Generators.random_circuit ~inputs:7 ~gates:40 ~outputs:4 ~seed
    in
    let patterns =
      Tpg.Random_tpg.uniform (Stats.Rng.create ~seed:(seed * 11) ()) c ~count:48
    in
    check_dominance_drops (Printf.sprintf "rand seed %d" seed) c patterns
  done

let test_dominance_collapsed_coverage_one () =
  (* On irredundant c17 an exhaustive set covers 100% of every level of
     the collapse; counts are the textbook 46 -> 22 -> 16. *)
  let c = Circuit.Generators.c17 () in
  let universe = Faults.Universe.all c in
  let dominance = Faults.Universe.collapse_dominance c universe in
  Alcotest.(check int) "46 raw" 46 (Array.length universe);
  Alcotest.(check int) "16 after dominance" 16 (Array.length dominance);
  let patterns = exhaustive_patterns (N.num_inputs c) in
  let profile = Fsim.Coverage.profile c universe patterns in
  let collapsed =
    Fsim.Coverage.restrict profile ~universe ~keep:dominance
  in
  Alcotest.(check int) "restricted universe" 16
    collapsed.Fsim.Coverage.universe_size;
  Alcotest.(check (float 1e-9)) "collapsed coverage 1.0" 1.0
    (Fsim.Coverage.final_coverage collapsed);
  (* On the seeded-redundancy demo, raw coverage saturates below 1.0;
     dominance collapsing plus redundancy exclusion reaches exactly
     1.0. *)
  let c = Circuit.Generators.redundant_demo () in
  let universe = Faults.Universe.all c in
  let patterns = exhaustive_patterns (N.num_inputs c) in
  let profile = Fsim.Coverage.profile c universe patterns in
  Alcotest.(check bool) "raw saturates below 1" true
    (Fsim.Coverage.final_coverage profile < 1.0);
  let dominance = Faults.Universe.collapse_dominance c universe in
  let restricted = Fsim.Coverage.restrict profile ~universe ~keep:dominance in
  Alcotest.(check bool) "dominance alone keeps the redundancy" true
    (Fsim.Coverage.final_coverage restricted < 1.0);
  let untestable = Lint.Testability.untestable_faults c universe in
  let kept = Faults.Universe.exclude_untestable dominance ~untestable in
  let corrected = Fsim.Coverage.restrict profile ~universe ~keep:kept in
  Alcotest.(check (float 1e-9)) "dominance + exclusion reaches 1.0" 1.0
    (Fsim.Coverage.final_coverage corrected)

let test_restrict_validates () =
  let c = Circuit.Generators.c17 () in
  let universe = Faults.Universe.all c in
  let profile = Fsim.Coverage.profile c universe (exhaustive_patterns 5) in
  Alcotest.check_raises "length mismatch rejected"
    (Invalid_argument "Coverage.restrict: universe does not match profile")
    (fun () ->
      ignore
        (Fsim.Coverage.restrict profile
           ~universe:(Array.sub universe 0 10)
           ~keep:universe))

(* ------------------------------------------------------------------ *)
(* PODEM with the analysis attached: verdicts identical fault by
   fault, total search effort never larger. *)

(* Verdicts must be identical fault by fault — the analysis only
   reorders or shortcuts the search.  Backtrack counts are a heuristic
   matter on any single circuit (unique sensitization can misjudge a
   small reconvergent cone), so the effort guarantee is asserted on the
   aggregate across all tested circuits, mirroring the bench ablation
   that gates every build. *)
let check_podem_equivalent name c =
  let universe =
    Faults.Collapse.representatives
      (Faults.Collapse.equivalence c (Faults.Universe.all c))
  in
  let analysis = Analysis.Engine.build ~learn_depth:(Some 2) c in
  let tag = function
    | Tpg.Podem.Test _ -> "test"
    | Tpg.Podem.Untestable -> "untestable"
    | Tpg.Podem.Aborted -> "aborted"
  in
  let total_baseline = ref 0 and total_assisted = ref 0 in
  Array.iter
    (fun fault ->
      let rb, sb = Tpg.Podem.generate c fault in
      let ra, sa = Tpg.Podem.generate ~analysis c fault in
      Alcotest.(check string)
        (Printf.sprintf "%s: verdict for %s unchanged" name
           (F.to_string c fault))
        (tag rb) (tag ra);
      total_baseline := !total_baseline + sb.Tpg.Podem.backtracks;
      total_assisted := !total_assisted + sa.Tpg.Podem.backtracks)
    universe;
  (!total_baseline, !total_assisted)

let test_podem_analysis_equivalence () =
  let grand_baseline = ref 0 and grand_assisted = ref 0 in
  let run name c =
    let baseline, assisted = check_podem_equivalent name c in
    grand_baseline := !grand_baseline + baseline;
    grand_assisted := !grand_assisted + assisted
  in
  run "c17" (Circuit.Generators.c17 ());
  run "redundant" (Circuit.Generators.redundant_demo ());
  for seed = 1 to 4 do
    run
      (Printf.sprintf "rand seed %d" seed)
      (Circuit.Generators.random_circuit ~inputs:8 ~gates:60 ~outputs:5 ~seed)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "aggregate assisted backtracks (%d) <= baseline (%d)"
       !grand_assisted !grand_baseline)
    true
    (!grand_assisted <= !grand_baseline)

let test_sampling_with_dominance () =
  let c = Circuit.Generators.c17 () in
  let universe = Faults.Universe.all c in
  let patterns = exhaustive_patterns (N.num_inputs c) in
  let rng = Stats.Rng.create ~seed:5 () in
  let estimate =
    Fsim.Sampling.estimate_coverage ~collapse_dominance:true rng c universe
      ~sample_size:12 patterns
  in
  Alcotest.(check int) "sampled from the collapsed universe" 16
    estimate.Fsim.Sampling.universe_size;
  Alcotest.(check (float 1e-9)) "exhaustive sample coverage 1.0" 1.0
    estimate.Fsim.Sampling.coverage

let suite =
  [ ( "analysis",
      [ Alcotest.test_case "dominators = brute-force paths" `Quick
          test_dominators_brute_force;
        Alcotest.test_case "common dominators on c17" `Quick
          test_common_dominators;
        Alcotest.test_case "c17.bench fixed reference" `Quick
          test_c17_bench_reference;
        Alcotest.test_case "learning reaches a fixpoint" `Quick
          test_fixpoint_terminates;
        Alcotest.test_case "contrapositive closure" `Quick
          test_contrapositive_symmetry;
        Alcotest.test_case "learned constants on redundant_demo" `Quick
          test_learned_constants_on_redundant_demo;
        Alcotest.test_case "engine without learning" `Quick
          test_engine_without_learning;
        Alcotest.test_case "analysis lint proofs are sound" `Quick
          test_analysis_lint_soundness;
        Alcotest.test_case "dominance drops always covered" `Quick
          test_dominance_drop_property;
        Alcotest.test_case "dominance-collapsed coverage = 1.0" `Quick
          test_dominance_collapsed_coverage_one;
        Alcotest.test_case "restrict validates universe" `Quick
          test_restrict_validates;
        Alcotest.test_case "podem verdicts unchanged by analysis" `Quick
          test_podem_analysis_equivalence;
        Alcotest.test_case "sampling with dominance collapse" `Quick
          test_sampling_with_dominance ] ) ]
