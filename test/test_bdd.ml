(* Tests for the hash-consed ROBDD engine (lib/bdd) and the exact
   analysis built on it (Analysis.Exact).

   The load-bearing property is *exactness*: on every generator
   circuit small enough to enumerate, the BDD verdicts and
   probabilities must match exhaustive simulation bit-for-bit — not
   within a tolerance.  Every intermediate value is a dyadic rational
   with at most 2^k in the denominator (k <= 16 inputs here), which an
   IEEE double represents exactly, so `=` on floats is the honest
   check and any deviation is an engine bug. *)

module N = Circuit.Netlist
module G = Circuit.Generators
module SP = Analysis.Signal_prob
module D = Analysis.Detectability
module E = Analysis.Exact
module R = Bdd.Robdd

let exhaustive_patterns width =
  Array.init (1 lsl width) (fun v ->
      Array.init width (fun i -> (v lsr i) land 1 = 1))

let popcount word =
  let rec loop w acc =
    if w = 0L then acc else loop (Int64.logand w (Int64.sub w 1L)) (acc + 1)
  in
  loop word 0

let exact_probabilities c patterns =
  let n = N.num_nodes c in
  let ones = Array.make n 0 in
  List.iter
    (fun block ->
      let values = Logicsim.Packed.eval_block c block in
      let live = Logicsim.Packed.live_mask block in
      for id = 0 to n - 1 do
        ones.(id) <- ones.(id) + popcount (Int64.logand values.(id) live)
      done)
    (Logicsim.Packed.blocks_of_patterns c patterns);
  Array.map
    (fun k -> float_of_int k /. float_of_int (Array.length patterns))
    ones

let exact_detections c patterns universe =
  let blocks = Logicsim.Packed.blocks_of_patterns c patterns in
  Array.map
    (fun fault ->
      let count =
        List.fold_left
          (fun acc block ->
            let good = Logicsim.Packed.eval_block c block in
            let good_outputs = Logicsim.Packed.output_words c good in
            acc + popcount (Fsim.Serial.detect_word c ~good_outputs fault block))
          0 blocks
      in
      float_of_int count /. float_of_int (Array.length patterns))
    universe

let workloads () =
  [ ("c17", G.c17 ());
    ("rca:4", G.ripple_carry_adder ~bits:4);
    ("cmp:4", G.comparator ~bits:4);
    ("dec:3", G.decoder ~bits:3);
    ("mux:2", G.mux_tree ~select_bits:2);
    ("parity:8", G.parity_tree ~bits:8);
    ("redundant", G.redundant_demo ());
    ("rand:8,30", G.random_circuit ~inputs:8 ~gates:30 ~outputs:4 ~seed:11);
    ("rand:10,60", G.random_circuit ~inputs:10 ~gates:60 ~outputs:5 ~seed:5) ]

(* ------------------------------------------------------------------ *)
(* ROBDD core: canonicity, Boolean identities, eval/probability vs
   direct enumeration, graceful budget exhaustion. *)

let test_robdd_core () =
  let t = R.create ~num_vars:4 () in
  let a = R.var t 0 and b = R.var t 1 and c = R.var t 2 and d = R.var t 3 in
  Alcotest.(check int) "x xor x = 0" R.zero (R.xor t a a);
  Alcotest.(check int) "x or !x = 1" R.one (R.or_ t a (R.not_ t a));
  Alcotest.(check int) "x and 0 = 0" R.zero (R.and_ t a R.zero);
  Alcotest.(check int) "x xnor x = 1" R.one (R.xnor t a a);
  (* Canonicity: De Morgan builds the same node. *)
  Alcotest.(check int) "de morgan is one node"
    (R.or_ t a b)
    (R.not_ t (R.and_ t (R.not_ t a) (R.not_ t b)));
  (* eval against a direct truth table. *)
  let f = R.xor t (R.and_ t a b) (R.or_ t c (R.not_ t d)) in
  let truth = ref 0 in
  for v = 0 to 15 do
    let bit i = (v lsr i) land 1 = 1 in
    let assignment = Array.init 4 bit in
    let expected = (bit 0 && bit 1) <> (bit 2 || not (bit 3)) in
    if expected then incr truth;
    Alcotest.(check bool)
      (Printf.sprintf "eval at %d" v)
      expected (R.eval t f assignment)
  done;
  Alcotest.(check (float 0.0)) "probability = sat fraction"
    (float_of_int !truth /. 16.0)
    (R.probability t f);
  Alcotest.(check (float 0.0)) "sat_count" (float_of_int !truth)
    (R.sat_count t f);
  (match R.any_sat t f with
  | Some assignment ->
    let arr = Array.make 4 false in
    List.iter (fun (level, v) -> arr.(level) <- v) assignment;
    Alcotest.(check bool) "any_sat satisfies" true (R.eval t f arr)
  | None -> Alcotest.fail "any_sat of a satisfiable function");
  Alcotest.(check bool) "any_sat zero is None" true (R.any_sat t R.zero = None);
  (* Budget exhaustion leaves the manager usable. *)
  let tiny = R.create ~budget:2 ~num_vars:4 () in
  Alcotest.check_raises "terminal-only budget" R.Exceeded (fun () ->
      ignore (R.var tiny 0));
  Alcotest.(check int) "manager still usable" 2 (R.size tiny);
  Alcotest.(check bool) "terminals still evaluate" false
    (R.eval tiny R.zero (Array.make 4 false))

(* ------------------------------------------------------------------ *)
(* Exhaustive oracles: on every <=16-input workload the exact analysis
   must classify every fault (no Unknown) and agree with brute force
   bit-for-bit. *)

let test_verdicts_match_exhaustive () =
  List.iter
    (fun (name, c) ->
      let exact = E.analyze c in
      if not (E.complete exact) then
        Alcotest.failf "%s: %d faults Unknown under the default budget" name
          (E.unknown_count exact);
      let universe = Faults.Universe.all c in
      let truth = exact_detections c (exhaustive_patterns (N.num_inputs c)) universe in
      Array.iteri
        (fun fi fault ->
          match E.verdict exact fault with
          | E.Unknown ->
            Alcotest.failf "%s: %s Unknown despite complete" name
              (Faults.Fault.to_string c fault)
          | E.Untestable ->
            if truth.(fi) > 0.0 then
              Alcotest.failf "%s: %s proved redundant but detected (d=%.6f)"
                name (Faults.Fault.to_string c fault) truth.(fi)
          | E.Testable p ->
            if p <> truth.(fi) then
              Alcotest.failf "%s: %s exact d=%.17g but truth %.17g" name
                (Faults.Fault.to_string c fault) p truth.(fi);
            if truth.(fi) = 0.0 then
              Alcotest.failf "%s: %s Testable but never detected" name
                (Faults.Fault.to_string c fault))
        universe)
    (workloads ())

let test_signal_probabilities_match_exhaustive () =
  List.iter
    (fun (name, c) ->
      let exact = E.analyze c in
      let truth = exact_probabilities c (exhaustive_patterns (N.num_inputs c)) in
      for id = 0 to N.num_nodes c - 1 do
        match E.signal_probability exact id with
        | None -> Alcotest.failf "%s: node %d has no exact probability" name id
        | Some p ->
          if p <> truth.(id) then
            Alcotest.failf "%s: node %d exact p=%.17g but truth %.17g" name id
              p truth.(id)
      done)
    (workloads ())

let test_redundancy_superset_of_lint () =
  (* The BDD proof is complete, the structural proofs are one-sided:
     everything lint proves must be re-proved by the BDD, and on a
     complete analysis the BDD set *is* the exhaustively undetectable
     set. *)
  List.iter
    (fun (name, c) ->
      let universe = Faults.Universe.all c in
      let exact = E.analyze c in
      let bdd = E.untestable exact universe in
      let classes = Faults.Collapse.equivalence c universe in
      let engine = Analysis.Engine.build c in
      let structural =
        Lint.Testability.untestable_faults ~classes ~analysis:engine c universe
      in
      Array.iter
        (fun f ->
          if not (List.mem f bdd) then
            Alcotest.failf "%s: lint proved %s untestable but the BDD did not"
              name (Faults.Fault.to_string c f))
        structural;
      let truth = exact_detections c (exhaustive_patterns (N.num_inputs c)) universe in
      Array.iteri
        (fun fi fault ->
          let undetectable = truth.(fi) = 0.0 in
          if undetectable <> List.mem fault bdd then
            Alcotest.failf "%s: %s undetectable=%b but BDD says %b" name
              (Faults.Fault.to_string c fault) undetectable
              (List.mem fault bdd))
        universe)
    (workloads ())

let test_redundant_demo_fully_classified () =
  let c = G.redundant_demo () in
  let universe = Faults.Universe.all c in
  Alcotest.(check int) "universe size" 54 (Array.length universe);
  let exact = E.analyze c in
  Alcotest.(check bool) "54/54 classified" true (E.complete exact);
  Alcotest.(check int) "no unknowns" 0 (E.unknown_count exact);
  (* The BDD pass through the lint front end adds the Redundant reason
     on top of the structural proofs and never loses one. *)
  let with_exact = Lint.Testability.untestable_faults ~exact c universe in
  let without = Lint.Testability.untestable_faults c universe in
  Alcotest.(check bool) "exact proves at least as much" true
    (Array.length with_exact >= Array.length without);
  Alcotest.(check int) "exact front end matches BDD set"
    (List.length (E.untestable exact universe))
    (Array.length with_exact)

(* ------------------------------------------------------------------ *)
(* Band refinement: the exact coverage band is contained in the
   interval band everywhere, collapses to a point on a complete
   analysis, and strictly sharpens the reject band on the seeded
   redundancy demo. *)

let test_exact_band_contained_in_interval_band () =
  let eps = 1e-12 in
  List.iter
    (fun (name, c) ->
      let exact = E.analyze c in
      let det = D.analyze (SP.analyze c) in
      let universe = Faults.Universe.all c in
      List.iter
        (fun n ->
          let interval = D.coverage_band det universe ~patterns:n in
          let refined = E.coverage_band exact det universe ~patterns:n in
          if
            refined.SP.lo < interval.SP.lo -. eps
            || refined.SP.hi > interval.SP.hi +. eps
          then
            Alcotest.failf "%s n=%d: exact [%.9f, %.9f] escapes [%.9f, %.9f]"
              name n refined.SP.lo refined.SP.hi interval.SP.lo interval.SP.hi;
          if E.complete exact && SP.width refined > eps then
            Alcotest.failf "%s n=%d: complete analysis left width %.2e" name n
              (SP.width refined);
          let eff_i =
            D.effective_coverage_band det universe ~epsilon:0.05 ~patterns:n
          in
          let eff_e =
            E.effective_coverage_band exact det universe ~epsilon:0.05
              ~patterns:n
          in
          if eff_e.SP.lo < eff_i.SP.lo -. eps || eff_e.SP.hi > eff_i.SP.hi +. eps
          then
            Alcotest.failf "%s n=%d: effective band not contained" name n)
        [ 1; 16; 256 ])
    (workloads ())

let test_reject_band_strictly_sharper_on_redundant_demo () =
  let c = G.redundant_demo () in
  let exact = E.analyze c in
  let det = D.analyze (SP.analyze c) in
  let reps =
    Faults.Collapse.representatives
      (Faults.Collapse.equivalence c (Faults.Universe.all c))
  in
  let n = 256 in
  let interval = D.coverage_band det reps ~patterns:n in
  let refined = E.coverage_band exact det reps ~patterns:n in
  Alcotest.(check bool) "coverage band strictly narrower" true
    (SP.width refined < SP.width interval);
  let r_lo_i, r_hi_i =
    Quality.Reject.reject_band ~yield_:0.07 ~n0:8.0 (interval.SP.lo, interval.SP.hi)
  in
  let r_lo_e, r_hi_e =
    Quality.Reject.reject_band ~yield_:0.07 ~n0:8.0 (refined.SP.lo, refined.SP.hi)
  in
  Alcotest.(check bool) "reject band contained" true
    (r_lo_e >= r_lo_i && r_hi_e <= r_hi_i);
  Alcotest.(check bool) "reject band strictly narrower" true
    (r_hi_e -. r_lo_e < r_hi_i -. r_lo_i)

let test_budget_fallback_degrades_to_intervals () =
  let c = G.c17 () in
  let exact = E.analyze ~budget:4 c in
  Alcotest.(check bool) "good machine did not fit" false (E.built exact);
  Alcotest.(check bool) "nothing classified" false (E.complete exact);
  Alcotest.(check int) "all unknown" (E.universe_size exact)
    (E.unknown_count exact);
  Array.iter
    (fun f ->
      Alcotest.(check bool) "verdict Unknown" true
        (E.verdict exact f = E.Unknown))
    (Faults.Universe.all c);
  Alcotest.(check bool) "no signal probability" true
    (E.signal_probability exact 0 = None);
  (* With nothing classified, the refined band *is* the interval band. *)
  let det = D.analyze (SP.analyze c) in
  let universe = Faults.Universe.all c in
  List.iter
    (fun n ->
      let interval = D.coverage_band det universe ~patterns:n in
      let refined = E.coverage_band exact det universe ~patterns:n in
      Alcotest.(check (float 0.0)) "lo falls back" interval.SP.lo refined.SP.lo;
      Alcotest.(check (float 0.0)) "hi falls back" interval.SP.hi refined.SP.hi)
    [ 1; 64 ]

(* ------------------------------------------------------------------ *)
(* Variable ordering: sifting returns a valid permutation and never
   loses to the DFS order it starts from. *)

let test_sifting_never_loses () =
  List.iter
    (fun (name, c) ->
      let dfs = Bdd.Build.dfs_order c in
      let sifted = Bdd.Build.sift_order c dfs in
      let k = N.num_inputs c in
      Alcotest.(check int) (name ^ " length") k (Array.length sifted);
      let seen = Array.make k false in
      Array.iter
        (fun pos ->
          if pos < 0 || pos >= k || seen.(pos) then
            Alcotest.failf "%s: sifted order is not a permutation" name;
          seen.(pos) <- true)
        sifted;
      let nodes order =
        Bdd.Build.total_nodes (Bdd.Build.build ~order c)
      in
      Alcotest.(check bool) (name ^ " sift <= dfs") true
        (nodes sifted <= nodes dfs))
    [ ("c17", G.c17 ()); ("dec:3", G.decoder ~bits:3);
      ("rca:4", G.ripple_carry_adder ~bits:4);
      ("rand:8,30", G.random_circuit ~inputs:8 ~gates:30 ~outputs:4 ~seed:11) ]

(* ------------------------------------------------------------------ *)
(* Equivalence checking. *)

let adder_chain () =
  Circuit.Bench_format.parse_string ~name:"adder_chain"
    {|INPUT(a)
INPUT(b)
INPUT(cin)
OUTPUT(sum)
OUTPUT(cout)
p = XOR(a, b)
sum = XOR(p, cin)
g = AND(a, b)
t = AND(cin, p)
cout = OR(g, t)|}

let adder_majority () =
  Circuit.Bench_format.parse_string ~name:"adder_majority"
    {|INPUT(a)
INPUT(b)
INPUT(cin)
OUTPUT(sum)
OUTPUT(cout)
q = XOR(b, cin)
sum = XOR(a, q)
m1 = AND(a, b)
m2 = AND(a, cin)
m3 = AND(b, cin)
m12 = OR(m1, m2)
cout = OR(m12, m3)|}

let adder_mutant () =
  Circuit.Bench_format.parse_string ~name:"adder_mutant"
    {|INPUT(a)
INPUT(b)
INPUT(cin)
OUTPUT(sum)
OUTPUT(cout)
q = XOR(b, cin)
sum = XOR(a, q)
m1 = AND(a, b)
m2 = AND(a, cin)
m3 = OR(b, cin)
m12 = OR(m1, m2)
cout = OR(m12, m3)|}

let test_equiv_verdicts () =
  (match Bdd.Equiv.check (adder_chain ()) (adder_majority ()) with
  | Ok Bdd.Equiv.Equivalent -> ()
  | _ -> Alcotest.fail "structurally distinct adders must be equivalent");
  (* Reflexivity on every workload. *)
  List.iter
    (fun (name, c) ->
      match Bdd.Equiv.check c c with
      | Ok Bdd.Equiv.Equivalent -> ()
      | _ -> Alcotest.failf "%s: not equivalent to itself" name)
    (workloads ());
  (* The mutant mismatches and the counterexample replays as a real
     output difference under plain simulation. *)
  let a = adder_chain () and m = adder_mutant () in
  match Bdd.Equiv.check a m with
  | Ok (Bdd.Equiv.Mismatch { output; pattern }) ->
    Alcotest.(check string) "differs on the carry" "cout" output;
    let outputs c =
      let values =
        Logicsim.Refsim.eval c
          (Array.map
             (fun id -> List.assoc c.N.node_names.(id) pattern)
             c.N.inputs)
      in
      Array.map (fun id -> values.(id)) c.N.outputs
    in
    Alcotest.(check bool) "counterexample replays" true
      (outputs a <> outputs m)
  | _ -> Alcotest.fail "mutant must mismatch"

let test_equiv_interface_and_budget () =
  (* Different interfaces are a usage error, not a verdict. *)
  (match Bdd.Equiv.check (adder_chain ()) (G.c17 ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "interface disagreement must be an error");
  (* A starved budget is inconclusive, never a wrong verdict. *)
  match Bdd.Equiv.check ~budget:4 (adder_chain ()) (adder_majority ()) with
  | Ok (Bdd.Equiv.Inconclusive _) -> ()
  | _ -> Alcotest.fail "tiny budget must be inconclusive"

(* ------------------------------------------------------------------ *)
(* Integration: PODEM with exact verdicts agrees with exhaustive
   simulation; an exact-equipped engine changes no verdict. *)

let test_podem_with_exact_engine () =
  let c = G.redundant_demo () in
  let universe = Faults.Universe.all c in
  let truth = exact_detections c (exhaustive_patterns (N.num_inputs c)) universe in
  let engine = Analysis.Engine.build ~exact_budget:E.default_budget c in
  Alcotest.(check bool) "engine carries the exact bundle" true
    (Analysis.Engine.exact engine <> None);
  Array.iteri
    (fun fi fault ->
      match Tpg.Podem.generate ~analysis:engine c fault with
      | Tpg.Podem.Untestable, _ ->
        if truth.(fi) > 0.0 then
          Alcotest.failf "%s: PODEM verdict Untestable but d=%.4f"
            (Faults.Fault.to_string c fault) truth.(fi)
      | Tpg.Podem.Test _, _ ->
        if truth.(fi) = 0.0 then
          Alcotest.failf "%s: PODEM found a test for an undetectable fault"
            (Faults.Fault.to_string c fault)
      | Tpg.Podem.Aborted, _ ->
        Alcotest.failf "%s: aborted on a 54-fault demo"
          (Faults.Fault.to_string c fault))
    universe

let suite =
  [ ( "bdd",
      [ Alcotest.test_case "ROBDD core: canonicity, eval, budget" `Quick
          test_robdd_core;
        Alcotest.test_case "verdicts match exhaustive simulation" `Quick
          test_verdicts_match_exhaustive;
        Alcotest.test_case "signal probabilities match exhaustive truth" `Quick
          test_signal_probabilities_match_exhaustive;
        Alcotest.test_case "BDD redundancies contain the lint proofs" `Quick
          test_redundancy_superset_of_lint;
        Alcotest.test_case "redundant_demo is fully classified" `Quick
          test_redundant_demo_fully_classified;
        Alcotest.test_case "exact band contained in interval band" `Quick
          test_exact_band_contained_in_interval_band;
        Alcotest.test_case "reject band strictly sharper on redundant demo"
          `Quick test_reject_band_strictly_sharper_on_redundant_demo;
        Alcotest.test_case "budget fallback degrades to intervals" `Quick
          test_budget_fallback_degrades_to_intervals;
        Alcotest.test_case "sifting never loses to the DFS order" `Quick
          test_sifting_never_loses;
        Alcotest.test_case "equivalence verdicts and counterexamples" `Quick
          test_equiv_verdicts;
        Alcotest.test_case "equiv interface errors and budget" `Quick
          test_equiv_interface_and_budget;
        Alcotest.test_case "PODEM with exact engine agrees with truth" `Quick
          test_podem_with_exact_engine ] ) ]
