(* Tests for the reporting helpers. *)

let test_series_of_fn () =
  let s = Report.Series.of_fn ~label:"id" ~f:(fun x -> x) ~lo:0.0 ~hi:1.0 ~steps:10 in
  Alcotest.(check int) "11 points" 11 (Array.length s.Report.Series.points);
  Alcotest.(check (float 1e-12)) "first" 0.0 (fst s.Report.Series.points.(0));
  Alcotest.(check (float 1e-12)) "last" 1.0 (fst s.Report.Series.points.(10))

let test_series_ranges () =
  let a = Report.Series.make ~label:"a" [| (0.0, 5.0); (2.0, -1.0) |] in
  let b = Report.Series.make ~label:"b" [| (1.0, 3.0) |] in
  Alcotest.(check (pair (float 0.0) (float 0.0))) "x range" (0.0, 2.0)
    (Report.Series.x_range [ a; b ]);
  Alcotest.(check (pair (float 0.0) (float 0.0))) "y range" (-1.0, 5.0)
    (Report.Series.y_range [ a; b ])

let test_series_map_y () =
  let s = Report.Series.make ~label:"s" [| (1.0, 2.0) |] in
  let doubled = Report.Series.map_y (fun y -> 2.0 *. y) s in
  Alcotest.(check (float 1e-12)) "mapped" 4.0 (snd doubled.Report.Series.points.(0))

let test_table_render () =
  let out =
    Report.Table.render
      ~aligns:[ Report.Table.Left; Right ]
      ~headers:[ "name"; "value" ]
      [ [ "alpha"; "1" ]; [ "b"; "22" ] ]
  in
  let lines = String.split_on_char '\n' out |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "4 lines" 4 (List.length lines);
  (* Right-aligned numeric column lines up. *)
  Alcotest.(check bool) "contains separator" true
    (List.exists (fun l -> String.length l > 0 && l.[0] = '-') lines)

let test_table_ragged_rows () =
  let out = Report.Table.render ~headers:[ "a"; "b" ] [ [ "only" ] ] in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let test_table_cells () =
  Alcotest.(check string) "float" "1.250" (Report.Table.float_cell 1.25);
  Alcotest.(check string) "percent" "95.0%" (Report.Table.percent_cell 0.95);
  Alcotest.(check string) "percent decimals" "95.00%"
    (Report.Table.percent_cell ~decimals:2 0.95)

let test_csv_escape () =
  Alcotest.(check string) "plain" "abc" (Report.Csv.escape_field "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Report.Csv.escape_field "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Report.Csv.escape_field "a\"b")

let test_csv_roundtrip () =
  let rows = [ [ "a"; "b,c"; "d\"e" ]; [ "1"; "2"; "3" ] ] in
  Alcotest.(check (list (list string))) "roundtrip" rows
    (Report.Csv.parse (Report.Csv.of_rows rows))

let test_csv_of_series () =
  let s = Report.Series.make ~label:"curve" [| (1.0, 2.0); (3.0, 4.0) |] in
  let text = Report.Csv.of_series [ s ] in
  match Report.Csv.parse text with
  | [ header; r1; r2 ] ->
    Alcotest.(check (list string)) "header" [ "series"; "x"; "y" ] header;
    Alcotest.(check string) "label" "curve" (List.nth r1 0);
    Alcotest.(check string) "label" "curve" (List.nth r2 0)
  | _ -> Alcotest.fail "expected 3 rows"

let test_plot_contains_glyphs_and_legend () =
  let s = Report.Series.of_fn ~label:"line" ~f:(fun x -> x) ~lo:0.0 ~hi:1.0 ~steps:20 in
  let out = Report.Ascii_plot.render ~title:"t" [ s ] in
  Alcotest.(check bool) "glyph present" true (String.contains out '*');
  Alcotest.(check bool) "legend present" true
    (let re = "legend:" in
     let rec find i =
       if i + String.length re > String.length out then false
       else if String.sub out i (String.length re) = re then true
       else find (i + 1)
     in
     find 0)

let test_plot_log_scale_drops_nonpositive () =
  let s = Report.Series.make ~label:"s" [| (0.0, 0.0); (1.0, 10.0); (2.0, 100.0) |] in
  let out = Report.Ascii_plot.render ~y_scale:Report.Ascii_plot.Log10 [ s ] in
  Alcotest.(check bool) "renders despite zero" true (String.length out > 0)

let test_plot_rejects_tiny_canvas () =
  let s = Report.Series.make ~label:"s" [| (0.0, 1.0) |] in
  Alcotest.(check bool) "tiny canvas rejected" true
    (try
       ignore (Report.Ascii_plot.render ~width:2 ~height:2 [ s ]);
       false
     with Invalid_argument _ -> true)

(* JSON emitter/parser: escaping of quotes, backslashes and control
   characters, non-finite floats, and print/parse round-trips —
   including on a real Chrome trace emitted by the span tracer. *)

let test_json_escaping () =
  let open Report.Json in
  Alcotest.(check string) "quote and backslash" {|"a\"b\\c"|}
    (to_string (String {|a"b\c|}));
  Alcotest.(check string) "control characters" "\"\\u0001\\t\\n\\r\""
    (to_string (String "\x01\t\n\r"));
  (* Every byte below 0x20 must be escaped and must parse back. *)
  for byte = 0 to 0x1f do
    let s = String (Printf.sprintf "x%cy" (Char.chr byte)) in
    match parse (to_string s) with
    | Ok parsed -> Alcotest.(check bool) "control byte round-trips" true (parsed = s)
    | Error message -> Alcotest.failf "byte 0x%02x: %s" byte message
  done

let test_json_nonfinite_floats () =
  let open Report.Json in
  Alcotest.(check string) "nan is null" "null" (to_string (Float nan));
  Alcotest.(check string) "+inf is null" "null" (to_string (Float infinity));
  Alcotest.(check string) "-inf is null" "null" (to_string (Float neg_infinity));
  Alcotest.(check bool) "nested non-finite floats still parse" true
    (parse (to_string (List [ Float nan; Int 1 ])) = Ok (List [ Null; Int 1 ]))

let test_json_parse_basics () =
  let open Report.Json in
  Alcotest.(check bool) "int vs float" true
    (parse "[1, 1.0, 1e2]" = Ok (List [ Int 1; Float 1.0; Float 100.0 ]));
  Alcotest.(check bool) "literals" true
    (parse {| {"a": [true, false, null]} |}
    = Ok (Obj [ ("a", List [ Bool true; Bool false; Null ]) ]));
  Alcotest.(check bool) "unicode escape decodes to UTF-8" true
    (parse "\"\\u00e9\"" = Ok (String "\xc3\xa9"));
  Alcotest.(check bool) "trailing garbage rejected" true
    (match parse "1 x" with Error _ -> true | Ok _ -> false);
  Alcotest.(check bool) "unterminated string rejected" true
    (match parse {|"abc|} with Error _ -> true | Ok _ -> false)

let test_json_roundtrip_trace () =
  let open Report.Json in
  Obs.Trace.reset ();
  Obs.Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.set_enabled false;
      Obs.Trace.reset ())
    (fun () ->
      Obs.Trace.with_span "outer \"quoted\"" (fun () ->
          Obs.Trace.add "ratio" 0.25;
          Obs.Trace.with_span "inner\\path" ignore));
  let trace = Obs.Trace.to_chrome_json () in
  Alcotest.(check bool) "compact round-trip" true (parse (to_string trace) = Ok trace);
  Alcotest.(check bool) "pretty round-trip" true
    (parse (to_string_pretty trace) = Ok trace)

let qcheck_props =
  let open QCheck in
  let printable_string =
    string_gen_of_size (Gen.int_range 0 12) Gen.printable
  in
  [ Test.make ~count:200 ~name:"csv roundtrips arbitrary cells"
      (list_of_size (Gen.int_range 1 5) (list_of_size (Gen.int_range 1 5) printable_string))
      (fun rows ->
        (* CSV cannot represent a lone CR inside a bare field the same
           way; our writer quotes it, so roundtrip must hold. *)
        Report.Csv.parse (Report.Csv.of_rows rows) = rows) ]

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [ ( "report",
      [ tc "series of_fn" test_series_of_fn;
        tc "series ranges" test_series_ranges;
        tc "series map_y" test_series_map_y;
        tc "table render" test_table_render;
        tc "table ragged rows" test_table_ragged_rows;
        tc "table cells" test_table_cells;
        tc "csv escape" test_csv_escape;
        tc "csv roundtrip" test_csv_roundtrip;
        tc "csv of series" test_csv_of_series;
        tc "plot glyphs + legend" test_plot_contains_glyphs_and_legend;
        tc "plot log scale" test_plot_log_scale_drops_nonpositive;
        tc "plot tiny canvas" test_plot_rejects_tiny_canvas ] );
    ( "report.properties",
      List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_props ) ]
