(* Benchmark and experiment-regeneration harness.

   Usage:  main.exe [target ...]
   Targets: fig1 fig2 fig3 fig4 fig5 fig6 table1 comparison fineline
            ablation signature stafan drift economics wafer par analyze
            ndetect micro all
            (default: all)
   Special: `par [FILE]` / `par-smoke [FILE [HISTORY]]` sweep the
   multicore fault-simulation engine, write BENCH_fsim.json (or FILE)
   and append a run block to the bench history (BENCH_history.jsonl or
   HISTORY); `diff HISTORY [CURRENT]` compares the latest same-host
   entries with noise-aware thresholds and exits 1 on regression;
   `obs-smoke [FILE [JOURNAL]]` runs one tiny traced iteration,
   validates the emitted Chrome trace JSON (BENCH_trace_smoke.json by
   default) and hard-asserts the --journal event sequence;
   `csv DIR` exports the analytic figure series.

   Every figure and table of the paper's evaluation is regenerated and
   printed; `micro` additionally runs one Bechamel measurement per
   experiment plus substrate micro-benchmarks. *)

let section title =
  Printf.printf "\n%s\n%s\n%s\n\n" (String.make 74 '=') title (String.make 74 '=')

(* The Fig. 5 / Table 1 experiments share one end-to-end pipeline run;
   compute it at most once per invocation. *)
let pipeline_run = lazy (Experiments.Pipeline.execute Experiments.Pipeline.default_config)

let run_fig1 () =
  section "Fig. 1 - field reject rate vs fault coverage (Eq. 8)";
  print_string (Experiments.Fig1.render ())

let run_fig n name reject =
  section (Printf.sprintf "Fig. %d - required coverage vs yield (r = %g)" n reject);
  print_string (Experiments.Fig2_3_4.render_figure ~name ~reject)

let run_fig234_checkpoints () =
  let rows =
    List.map
      (fun (label, paper, ours) ->
        [ label; Report.Table.float_cell paper; Report.Table.float_cell ours ])
      (Experiments.Fig2_3_4.checkpoints ())
  in
  print_string
    (Report.Table.render
       ~aligns:[ Report.Table.Left; Right; Right ]
       ~headers:[ "checkpoint"; "paper"; "reproduced" ]
       rows)

let run_fig5 () =
  section "Fig. 5 - determination of n0 from experimental data";
  let run = Lazy.force pipeline_run in
  print_string (Experiments.Pipeline.summary run);
  print_newline ();
  print_string (Experiments.Fig5.render ~run ())

let run_fig6 () =
  section "Fig. 6 - approximations for q0(n)";
  print_string (Experiments.Fig6.render ())

let run_table1 () =
  section "Table 1 - result of chip test (paper vs simulated lot)";
  let run = Lazy.force pipeline_run in
  print_string (Experiments.Table1.render ~run ())

let run_comparison () =
  section "Section 7 - comparison with the Wadsack baseline";
  print_string (Experiments.Comparison.render ())

let run_fineline () =
  section "Section 8 - fine-line technology study";
  print_string (Experiments.Fineline.render ())

let run_ablation () =
  section "Ablation studies";
  print_string (Experiments.Ablation.render ())

let run_signature () =
  section "Signature compaction - MISR aliasing vs register width";
  let circuit = Circuit.Generators.alu ~bits:3 in
  let classes = Faults.Collapse.equivalence circuit (Faults.Universe.all circuit) in
  let universe = Faults.Collapse.representatives classes in
  let rng = Stats.Rng.create ~seed:2 () in
  let patterns = Tpg.Random_tpg.uniform rng circuit ~count:64 in
  let rows =
    List.map
      (fun width ->
        let misr = Tester.Signature.create ~width in
        let r = Tester.Signature.aliasing_study misr circuit universe patterns in
        [ string_of_int width;
          string_of_int r.Tester.Signature.detected_by_compare;
          string_of_int r.Tester.Signature.aliased;
          Printf.sprintf "%.4f" r.Tester.Signature.aliasing_rate;
          Printf.sprintf "%.4f" (2.0 ** float_of_int (-width)) ])
      [ 2; 4; 8; 16 ]
  in
  print_string
    (Report.Table.render
       ~headers:[ "MISR width"; "detected"; "aliased"; "rate"; "2^-w" ] rows);
  Printf.printf
    "\neffective reject rate at f = 0.90 (y = 0.07, n0 = 8): compare %.5f | \
     w=8 MISR %.5f | w=16 MISR %.5f\n"
    (Quality.Reject.reject_rate ~yield_:0.07 ~n0:8.0 0.9)
    (Tester.Signature.effective_reject_rate ~yield_:0.07 ~n0:8.0 ~signature_width:8 0.9)
    (Tester.Signature.effective_reject_rate ~yield_:0.07 ~n0:8.0 ~signature_width:16 0.9)

let run_stafan () =
  section "STAFAN ablation - statistical coverage prediction vs fault simulation";
  let circuit = Circuit.Generators.lsi_chip ~scale:6 () in
  let classes = Faults.Collapse.equivalence circuit (Faults.Universe.all circuit) in
  let universe = Faults.Collapse.representatives classes in
  let rng = Stats.Rng.create ~seed:31 () in
  let patterns = Tpg.Random_tpg.uniform rng circuit ~count:256 in
  let st = Fsim.Stafan.analyze circuit patterns in
  let profile = Fsim.Coverage.profile circuit universe patterns in
  let rows =
    List.map
      (fun k ->
        [ string_of_int k;
          Report.Table.float_cell ~decimals:4 (Fsim.Coverage.coverage_after profile k);
          Report.Table.float_cell ~decimals:4
            (Fsim.Stafan.expected_coverage st universe ~pattern_count:k) ])
      [ 4; 16; 64; 256 ]
  in
  print_string
    (Report.Table.render
       ~headers:[ "patterns"; "fault simulation"; "STAFAN estimate" ] rows);
  Printf.printf
    "\nSTAFAN costs one logic-simulation pass; the fault simulator graded %d faults.\n"
    (Array.length universe)

let run_drift () =
  section "Process-drift study - per-lot estimation under dispersion";
  print_string (Experiments.Drift.render ())

let run_economics () =
  section "Economics extension - optimal coverage vs cost ratio";
  print_string (Experiments.Economics_study.render ())

let run_wafer () =
  section "Wafer map demo (spatial defect model)";
  let rng = Stats.Rng.create ~seed:11 () in
  let yield_model =
    Fab.Yield_model.create
      ~defect_density:(Fab.Yield_model.solve_defect_density ~target_yield:0.5
                         ~area:1.0 ~variance_ratio:0.25)
      ~area:1.0 ~variance_ratio:0.25
  in
  let defect =
    Fab.Defect.create ~yield_model ~fault_multiplicity:2.0 ~universe_size:1000 ()
  in
  let wafer = Fab.Wafer.fabricate defect rng ~diameter:31 () in
  print_string (Fab.Wafer.render_map wafer);
  let rows =
    Array.to_list (Fab.Wafer.yield_by_ring wafer ~rings:5)
    |> List.map (fun (r, y) ->
           [ Report.Table.float_cell ~decimals:2 r; Report.Table.float_cell y ])
  in
  print_string (Report.Table.render ~headers:[ "ring radius"; "yield" ] rows)

(* ------------------------------------------------------------------ *)
(* Multicore fault-simulation sweep: grade one fault universe with the
   serial PPSFP engine, then with the fault-sharded Par engine at
   several domain counts, verifying bit-identical results and emitting
   a machine-readable BENCH_fsim.json so the performance trajectory is
   trackable across commits. *)

(* One measurement: warmup runs discarded, then [repeats] timed samples
   reported as min/median/p90, plus GC allocation across the timed
   samples.  A single wall-clock sample is too noisy to compare across
   commits; min is the least-perturbed run, p90 bounds the jitter. *)
type timing = {
  sorted : float array;  (* ascending, seconds, length = repeats *)
  minor_words : float;   (* total across the timed samples *)
  major_words : float;
}

let quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = min (n - 1) (lo + 1) in
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let t_min t = t.sorted.(0)
let t_median t = quantile t.sorted 0.5
let t_p90 t = quantile t.sorted 0.9

let measure ~warmup ~repeats f =
  for _ = 1 to warmup do
    ignore (f ())
  done;
  let result = ref None in
  let samples = Array.make repeats 0.0 in
  let g0 = Gc.quick_stat () in
  for i = 0 to repeats - 1 do
    let t0 = Unix.gettimeofday () in
    result := Some (f ());
    samples.(i) <- Unix.gettimeofday () -. t0
  done;
  let g1 = Gc.quick_stat () in
  Array.sort compare samples;
  ( Option.get !result,
    { sorted = samples;
      minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
      major_words = g1.Gc.major_words -. g0.Gc.major_words } )

(* Static-analysis bench: dominator-pass and implication-closure cost
   at several learn depths, plus a PODEM ablation — baseline vs
   analysis-assisted — over the faults a short random pattern set
   leaves undetected (the faults deterministic ATPG actually has to
   work on).  Verdicts must agree fault-by-fault and the assisted run
   must not add backtracks in total; both are hard failures here so a
   regression breaks the build, and the numbers land in
   BENCH_fsim.json next to the fault-simulation sweep. *)

let analysis_bench ~smoke () =
  Printf.printf "\nstatic analysis (learn depths 0/1/2 + PODEM ablation)\n\n";
  let circuit =
    if smoke then
      Circuit.Generators.random_circuit ~inputs:16 ~gates:400 ~outputs:12 ~seed:7
    else
      Circuit.Generators.random_circuit ~inputs:32 ~gates:2000 ~outputs:24 ~seed:7
  in
  let warmup = 1 in
  let repeats = if smoke then 2 else 5 in
  let _, dom_t =
    measure ~warmup ~repeats (fun () -> Analysis.Dominators.compute circuit)
  in
  Printf.printf "%-24s %10s %10s %10s\n" "pass" "min (s)" "median (s)" "p90 (s)";
  Printf.printf "%-24s %10.4f %10.4f %10.4f\n" "dominators" (t_min dom_t)
    (t_median dom_t) (t_p90 dom_t);
  let learn_rows =
    List.map
      (fun depth ->
        let imp, t =
          measure ~warmup ~repeats (fun () ->
              Analysis.Implication.learn ~depth circuit)
        in
        Printf.printf "%-24s %10.4f %10.4f %10.4f\n"
          (Printf.sprintf "implications depth=%d" depth)
          (t_min t) (t_median t) (t_p90 t);
        Report.Json.Obj
          [ ("depth", Report.Json.Int depth);
            ("rounds", Report.Json.Int (Analysis.Implication.rounds imp));
            ("learned", Report.Json.Int (Analysis.Implication.learned_count imp));
            ("implications", Report.Json.Int (Analysis.Implication.direct_count imp));
            ("min_s", Report.Json.Float (t_min t));
            ("median_s", Report.Json.Float (t_median t));
            ("p90_s", Report.Json.Float (t_p90 t)) ])
      [ 0; 1; 2 ]
  in
  (* PODEM ablation on the faults random patterns leave undetected. *)
  let classes = Faults.Collapse.equivalence circuit (Faults.Universe.all circuit) in
  let universe = Faults.Collapse.dominance circuit classes in
  let patterns =
    Tpg.Random_tpg.uniform (Stats.Rng.create ~seed:99 ()) circuit
      ~count:(if smoke then 32 else 64)
  in
  let profile = Fsim.Coverage.profile circuit universe patterns in
  let hard = Array.of_list (Fsim.Coverage.undetected profile universe) in
  let engine = Analysis.Engine.build ~learn_depth:(Some 1) circuit in
  let sweep ?analysis () =
    Array.map (fun fault -> Tpg.Podem.generate ?analysis circuit fault) hard
  in
  let baseline = sweep () in
  let assisted = sweep ~analysis:engine () in
  (* Under a finite backtrack limit, reordering the search legitimately
     changes which faults abort; the soundness invariant is that the
     two runs never return *contradicting* verdicts (Test one way,
     Untestable the other). *)
  let conflicts = ref 0 in
  Array.iteri
    (fun i (rb, _) ->
      let ra, _ = assisted.(i) in
      match (rb, ra) with
      | Tpg.Podem.Test _, Tpg.Podem.Untestable
      | Tpg.Podem.Untestable, Tpg.Podem.Test _ -> incr conflicts
      | _ -> ())
    baseline;
  let total run =
    Array.fold_left (fun acc (_, s) -> acc + s.Tpg.Podem.backtracks) 0 run
  in
  let aborts run =
    Array.fold_left
      (fun acc (r, _) -> acc + match r with Tpg.Podem.Aborted -> 1 | _ -> 0)
      0 run
  in
  let baseline_backtracks = total baseline in
  let assisted_backtracks = total assisted in
  Printf.printf
    "\nPODEM ablation: %d hard faults, backtracks %d -> %d (delta %d), \
     aborts %d -> %d, %d verdict conflicts\n"
    (Array.length hard) baseline_backtracks assisted_backtracks
    (baseline_backtracks - assisted_backtracks)
    (aborts baseline) (aborts assisted) !conflicts;
  if !conflicts > 0 then
    failwith "BENCH analyze: PODEM verdicts contradict under analysis";
  if aborts assisted > aborts baseline then
    failwith "BENCH analyze: analysis-assisted PODEM aborted on more faults";
  if assisted_backtracks > baseline_backtracks then
    failwith "BENCH analyze: analysis-assisted PODEM added backtracks";
  Report.Json.Obj
    [ ("circuit", Report.Json.String circuit.Circuit.Netlist.name);
      ("gates", Report.Json.Int (Circuit.Netlist.num_gates circuit));
      ( "dominators",
        Report.Json.Obj
          [ ("min_s", Report.Json.Float (t_min dom_t));
            ("median_s", Report.Json.Float (t_median dom_t));
            ("p90_s", Report.Json.Float (t_p90 dom_t)) ] );
      ("implications", Report.Json.List learn_rows);
      ( "podem_ablation",
        Report.Json.Obj
          [ ("hard_faults", Report.Json.Int (Array.length hard));
            ("baseline_backtracks", Report.Json.Int baseline_backtracks);
            ("analysis_backtracks", Report.Json.Int assisted_backtracks);
            ( "backtracks_saved",
              Report.Json.Int (baseline_backtracks - assisted_backtracks) );
            ("baseline_aborted", Report.Json.Int (aborts baseline));
            ("analysis_aborted", Report.Json.Int (aborts assisted));
            ("verdict_conflicts", Report.Json.Int !conflicts) ] ) ]

let run_analyze () =
  section "Static-analysis bench (dominators, implications, PODEM ablation)";
  ignore (analysis_bench ~smoke:false ())

(* n-detection sweep: grade one fault universe with the drop-after-n
   kernels at n = 1/2/4/8, cross-checking Serial/Ppsfp/Par bit-identity
   and the n = 1 / first-detection equivalence (hard failures), and
   recording per-n timings plus the n-detect coverage curve so
   BENCH_fsim.json tracks the cost of deeper grading. *)
let ndetect_bench ~warmup ~repeats circuit universe patterns =
  Printf.printf "\nn-detection sweep (drop-after-n)\n\n";
  let baseline = Fsim.Ppsfp.run circuit universe patterns in
  let nf = Array.length universe in
  let np = Array.length patterns in
  Printf.printf "%-4s %10s %10s %10s %10s\n" "n" "min (s)" "median (s)"
    "p90 (s)" "coverage";
  let prev_coverage = ref infinity in
  List.map
    (fun n ->
      let (detections, nth), t =
        measure ~warmup ~repeats (fun () ->
            Fsim.Ppsfp.run_counts ~n circuit universe patterns)
      in
      if Fsim.Serial.run_counts ~n circuit universe patterns <> (detections, nth)
      then failwith "BENCH ndetect: Serial.run_counts diverged from Ppsfp";
      if Fsim.Par.run_counts ~domains:2 ~n circuit universe patterns
         <> (detections, nth)
      then failwith "BENCH ndetect: Par.run_counts diverged from Ppsfp";
      if n = 1 && nth <> baseline then
        failwith "BENCH ndetect: n=1 grading diverged from first-detection";
      let profile =
        { Fsim.Coverage.universe_size = nf; pattern_count = np;
          first_detection = nth }
      in
      let coverage = Fsim.Coverage.final_coverage profile in
      if coverage > !prev_coverage +. 1e-12 then
        failwith "BENCH ndetect: coverage increased with n";
      prev_coverage := coverage;
      Printf.printf "%-4d %10.3f %10.3f %10.3f %10.4f\n" n (t_min t)
        (t_median t) (t_p90 t) coverage;
      let checkpoints =
        List.sort_uniq compare [ max 1 (np / 4); max 1 (np / 2);
                                 max 1 (3 * np / 4); np ]
      in
      Report.Json.Obj
        [ ("n", Report.Json.Int n);
          ("min_s", Report.Json.Float (t_min t));
          ("median_s", Report.Json.Float (t_median t));
          ("p90_s", Report.Json.Float (t_p90 t));
          ("coverage", Report.Json.Float coverage);
          ( "curve",
            Report.Json.List
              (List.map
                 (fun k ->
                   Report.Json.Obj
                     [ ("patterns", Report.Json.Int k);
                       ( "coverage",
                         Report.Json.Float
                           (Fsim.Coverage.coverage_after profile k) ) ])
                 checkpoints) ) ])
    [ 1; 2; 4; 8 ]

let run_ndetect () =
  section "n-detection sweep (drop-after-n kernels)";
  let circuit =
    Circuit.Generators.random_circuit ~inputs:64 ~gates:6000 ~outputs:48 ~seed:7
  in
  let classes = Faults.Collapse.equivalence circuit (Faults.Universe.all circuit) in
  let universe = Faults.Collapse.representatives classes in
  let patterns =
    Tpg.Random_tpg.uniform (Stats.Rng.create ~seed:99 ()) circuit ~count:512
  in
  ignore (ndetect_bench ~warmup:1 ~repeats:5 circuit universe patterns)

(* Static testability: the predicted coverage band (interval analysis,
   no simulation) against STAFAN's estimate and exact fault simulation.
   Containment is a hard check: the *measured* coverage of one random
   pattern set is a realization of the expected coverage the band
   provably contains, so it must land inside the band widened by a
   3-sigma sampling slack (the mean of F Bernoulli detections has
   standard deviation at most 1/(2*sqrt F)). *)

let testability_bench ~smoke () =
  section "static testability: predicted band vs STAFAN vs exact fsim";
  let workloads =
    let g = Circuit.Generators.of_spec in
    [ (g "c17", 256); (g "dec:5", 512); (g "parity:8", 128) ]
    @
    if smoke then []
    else
      [ (g "dec:6", 1024);
        (Circuit.Generators.random_circuit ~inputs:10 ~gates:60 ~outputs:4
           ~seed:5, 256) ]
  in
  let rows = ref [] in
  Printf.printf "%-10s %-8s %-18s %-10s %-10s\n" "circuit" "patterns"
    "predicted band" "stafan" "exact";
  List.iter
    (fun (circuit, pattern_count) ->
      let classes =
        Faults.Collapse.equivalence circuit (Faults.Universe.all circuit)
      in
      let reps = Faults.Collapse.representatives classes in
      let det =
        Analysis.Detectability.analyze (Analysis.Signal_prob.analyze circuit)
      in
      let rng = Stats.Rng.create ~seed:77 () in
      let patterns = Tpg.Random_tpg.uniform rng circuit ~count:pattern_count in
      let profile = Fsim.Coverage.profile circuit reps patterns in
      let st = Fsim.Stafan.analyze circuit patterns in
      let slack =
        (3.0 /. (2.0 *. sqrt (float_of_int (Array.length reps)))) +. 1e-9
      in
      List.iter
        (fun n ->
          let band = Analysis.Detectability.coverage_band det reps ~patterns:n in
          let lo = band.Analysis.Signal_prob.lo
          and hi = band.Analysis.Signal_prob.hi in
          let exact = Fsim.Coverage.coverage_after profile n in
          let stafan = Fsim.Stafan.expected_coverage st reps ~pattern_count:n in
          Printf.printf "%-10s %-8d [%.4f, %.4f]   %-10.4f %-10.4f\n"
            circuit.Circuit.Netlist.name n lo hi stafan exact;
          if exact < lo -. slack || exact > hi +. slack then
            failwith
              (Printf.sprintf
                 "BENCH testability: %s at n=%d: measured coverage %.4f \
                  outside predicted band [%.4f, %.4f] (slack %.4f)"
                 circuit.Circuit.Netlist.name n exact lo hi slack);
          rows :=
            Report.Json.Obj
              [ ("circuit", Report.Json.String circuit.Circuit.Netlist.name);
                ("faults", Report.Json.Int (Array.length reps));
                ("patterns", Report.Json.Int n);
                ("predicted_lo", Report.Json.Float lo);
                ("predicted_hi", Report.Json.Float hi);
                ("stafan", Report.Json.Float stafan);
                ("exact", Report.Json.Float exact) ]
            :: !rows)
        [ max 1 (pattern_count / 16); pattern_count / 4; pattern_count ])
    workloads;
  (* Hybrid ATPG ablation on a random-pattern-resistant circuit: the
     statically predicted cutover must beat pure random patterns on
     both axes — at least the coverage, with fewer patterns. *)
  let circuit = Circuit.Generators.decoder ~bits:(if smoke then 5 else 6) in
  let budget = if smoke then 1024 else 2048 in
  let classes =
    Faults.Collapse.equivalence circuit (Faults.Universe.all circuit)
  in
  let reps = Faults.Collapse.representatives classes in
  let config =
    { Tpg.Atpg.default_config with
      Tpg.Atpg.random_budget = budget;
      random_target = 1.0;
      hybrid = true;
      resistant_threshold = 0.02 }
  in
  let report = Tpg.Atpg.run ~config circuit reps in
  let rng = Stats.Rng.create ~seed:config.Tpg.Atpg.seed () in
  let pure = Tpg.Random_tpg.uniform rng circuit ~count:budget in
  let pure_coverage =
    Fsim.Coverage.final_coverage (Fsim.Coverage.profile circuit reps pure)
  in
  let hybrid_coverage = Tpg.Atpg.coverage report in
  let hybrid_patterns = Array.length report.Tpg.Atpg.patterns in
  Printf.printf
    "\nhybrid ATPG on %s: %d patterns (cutover %s) coverage %.4f | pure \
     random: %d patterns coverage %.4f\n"
    circuit.Circuit.Netlist.name hybrid_patterns
    (match report.Tpg.Atpg.predicted_cutover with
    | Some n -> string_of_int n
    | None -> "none")
    hybrid_coverage budget pure_coverage;
  if hybrid_coverage < pure_coverage then
    failwith "BENCH testability: hybrid ATPG lost coverage vs pure random";
  if hybrid_patterns >= budget then
    failwith "BENCH testability: hybrid ATPG used no fewer patterns than pure random";
  Report.Json.Obj
    [ ("curves", Report.Json.List (List.rev !rows));
      ("hybrid",
       Report.Json.Obj
         [ ("circuit", Report.Json.String circuit.Circuit.Netlist.name);
           ("budget", Report.Json.Int budget);
           ("predicted_cutover",
            (match report.Tpg.Atpg.predicted_cutover with
            | Some n -> Report.Json.Int n
            | None -> Report.Json.Null));
           ("hybrid_patterns", Report.Json.Int hybrid_patterns);
           ("hybrid_coverage", Report.Json.Float hybrid_coverage);
           ("pure_random_patterns", Report.Json.Int budget);
           ("pure_random_coverage", Report.Json.Float pure_coverage) ]) ]

(* Exact ROBDD analysis: shared node counts under the DFS order vs one
   sifting pass, ITE cache hit rate, and the exact-vs-interval
   band-width ablation.  Hard checks: sifting never loses to the DFS
   order it starts from, every workload classifies completely under
   the default node budget, and the exact coverage band is contained
   in the interval band it refines (so it is never wider).  The
   equivalence checker is exercised on a structurally distinct
   full-adder pair plus a one-gate mutant whose extracted
   counterexample must replay as a real output mismatch under plain
   simulation. *)

let bdd_bench ~smoke () =
  section "exact ROBDD analysis: node counts, cache, band ablation";
  let specs =
    [ "c17"; "parity:8"; "dec:5" ] @ if smoke then [] else [ "rca:8"; "mux:3" ]
  in
  let rows = ref [] in
  Printf.printf "%-10s %9s %10s %6s %11s %14s\n" "circuit" "dfs_nodes"
    "sift_nodes" "cache" "exact_width" "interval_width";
  List.iter
    (fun spec ->
      let circuit = Circuit.Generators.of_spec spec in
      let dfs = Bdd.Build.dfs_order circuit in
      let dfs_nodes =
        Bdd.Build.total_nodes (Bdd.Build.build ~order:dfs circuit)
      in
      let sifted = Bdd.Build.sift_order circuit dfs in
      let sift_nodes =
        Bdd.Build.total_nodes (Bdd.Build.build ~order:sifted circuit)
      in
      if sift_nodes > dfs_nodes then
        failwith
          (Printf.sprintf
             "BENCH bdd: %s: sifted order (%d nodes) lost to DFS (%d)" spec
             sift_nodes dfs_nodes);
      let exact = Analysis.Exact.analyze circuit in
      if not (Analysis.Exact.complete exact) then
        failwith
          (Printf.sprintf
             "BENCH bdd: %s: default budget left %d faults Unknown" spec
             (Analysis.Exact.unknown_count exact));
      let det =
        Analysis.Detectability.analyze (Analysis.Signal_prob.analyze circuit)
      in
      let reps =
        Faults.Collapse.representatives
          (Faults.Collapse.equivalence circuit (Faults.Universe.all circuit))
      in
      let patterns = 256 in
      let interval =
        Analysis.Detectability.coverage_band det reps ~patterns
      in
      let exact_band = Analysis.Exact.coverage_band exact det reps ~patterns in
      let ilo = interval.Analysis.Signal_prob.lo
      and ihi = interval.Analysis.Signal_prob.hi
      and elo = exact_band.Analysis.Signal_prob.lo
      and ehi = exact_band.Analysis.Signal_prob.hi in
      if elo < ilo -. 1e-12 || ehi > ihi +. 1e-12 then
        failwith
          (Printf.sprintf
             "BENCH bdd: %s: exact band [%.6f, %.6f] escapes interval band \
              [%.6f, %.6f]"
             spec elo ehi ilo ihi);
      let hit_rate = Analysis.Exact.cache_hit_rate exact in
      Printf.printf "%-10s %9d %10d %6.2f %11.6f %14.6f\n"
        circuit.Circuit.Netlist.name dfs_nodes sift_nodes hit_rate
        (ehi -. elo) (ihi -. ilo);
      rows :=
        Report.Json.Obj
          [ ("circuit", Report.Json.String circuit.Circuit.Netlist.name);
            ("inputs",
             Report.Json.Int (Array.length circuit.Circuit.Netlist.inputs));
            ("gates", Report.Json.Int (Circuit.Netlist.num_gates circuit));
            ("faults", Report.Json.Int (Array.length reps));
            ("dfs_nodes", Report.Json.Int dfs_nodes);
            ("sifted_nodes", Report.Json.Int sift_nodes);
            ("manager_nodes", Report.Json.Int (Analysis.Exact.node_count exact));
            ("cache_hit_rate", Report.Json.Float hit_rate);
            ("untestable",
             Report.Json.Int
               (List.length (Analysis.Exact.untestable exact reps)));
            ("patterns", Report.Json.Int patterns);
            ("interval_lo", Report.Json.Float ilo);
            ("interval_hi", Report.Json.Float ihi);
            ("exact_lo", Report.Json.Float elo);
            ("exact_hi", Report.Json.Float ehi);
            ("interval_width", Report.Json.Float (ihi -. ilo));
            ("exact_width", Report.Json.Float (ehi -. elo)) ]
        :: !rows)
    specs;
  (* Equivalence self-check on the full-adder pair from
     examples/circuits: carry-chain vs majority form must come back
     Equivalent; the one-gate mutant must mismatch with a
     counterexample that replays as a real output difference. *)
  let chain =
    Circuit.Bench_format.parse_string ~name:"adder_chain"
      {|INPUT(a)
INPUT(b)
INPUT(cin)
OUTPUT(sum)
OUTPUT(cout)
p = XOR(a, b)
sum = XOR(p, cin)
g = AND(a, b)
t = AND(cin, p)
cout = OR(g, t)|}
  in
  let majority =
    Circuit.Bench_format.parse_string ~name:"adder_majority"
      {|INPUT(a)
INPUT(b)
INPUT(cin)
OUTPUT(sum)
OUTPUT(cout)
q = XOR(b, cin)
sum = XOR(a, q)
m1 = AND(a, b)
m2 = AND(a, cin)
m3 = AND(b, cin)
m12 = OR(m1, m2)
cout = OR(m12, m3)|}
  in
  let mutant =
    Circuit.Bench_format.parse_string ~name:"adder_mutant"
      {|INPUT(a)
INPUT(b)
INPUT(cin)
OUTPUT(sum)
OUTPUT(cout)
q = XOR(b, cin)
sum = XOR(a, q)
m1 = AND(a, b)
m2 = AND(a, cin)
m3 = OR(b, cin)
m12 = OR(m1, m2)
cout = OR(m12, m3)|}
  in
  (match Bdd.Equiv.check chain majority with
  | Ok Bdd.Equiv.Equivalent -> ()
  | _ -> failwith "BENCH bdd: adder pair not proved equivalent");
  let mutant_output, counterexample =
    match Bdd.Equiv.check chain mutant with
    | Ok (Bdd.Equiv.Mismatch { output; pattern }) -> (output, pattern)
    | _ -> failwith "BENCH bdd: adder mutant not caught"
  in
  let outputs_under c =
    let values =
      Logicsim.Refsim.eval c
        (Array.map
           (fun id -> List.assoc c.Circuit.Netlist.node_names.(id) counterexample)
           c.Circuit.Netlist.inputs)
    in
    Array.map (fun id -> values.(id)) c.Circuit.Netlist.outputs
  in
  if outputs_under chain = outputs_under mutant then
    failwith "BENCH bdd: counterexample does not replay as a mismatch";
  Printf.printf
    "\nequiv: chain == majority; mutant differs on %s (counterexample \
     replays under simulation)\n"
    mutant_output;
  Report.Json.Obj
    [ ("circuits", Report.Json.List (List.rev !rows));
      ("equiv",
       Report.Json.Obj
         [ ("pair_equivalent", Report.Json.Bool true);
           ("mutant_output", Report.Json.String mutant_output);
           ("counterexample_inputs",
            Report.Json.Int (List.length counterexample)) ]) ]

let run_par ?(out = "BENCH_fsim.json") ?(history = "BENCH_history.jsonl")
    ~smoke () =
  section
    (Printf.sprintf "Multicore PPSFP sweep%s -> %s"
       (if smoke then " (smoke)" else "") out);
  let circuit =
    if smoke then
      Circuit.Generators.random_circuit ~inputs:16 ~gates:400 ~outputs:12 ~seed:7
    else
      Circuit.Generators.random_circuit ~inputs:64 ~gates:6000 ~outputs:48 ~seed:7
  in
  let classes = Faults.Collapse.equivalence circuit (Faults.Universe.all circuit) in
  let universe = Faults.Collapse.representatives classes in
  let rng = Stats.Rng.create ~seed:99 () in
  let pattern_count = if smoke then 96 else 512 in
  let patterns = Tpg.Random_tpg.uniform rng circuit ~count:pattern_count in
  let domain_counts = if smoke then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  let warmup = 1 in
  let repeats = if smoke then 2 else 5 in
  let baseline, serial_t =
    measure ~warmup ~repeats (fun () -> Fsim.Ppsfp.run circuit universe patterns)
  in
  let serial_median = t_median serial_t in
  let record ~engine ~domains t =
    Report.Json.Obj
      [ ("circuit", Report.Json.String circuit.Circuit.Netlist.name);
        ("gates", Report.Json.Int (Circuit.Netlist.num_gates circuit));
        ("faults", Report.Json.Int (Array.length universe));
        ("patterns", Report.Json.Int pattern_count);
        ("engine", Report.Json.String engine);
        ("domains", Report.Json.Int domains);
        ("min_s", Report.Json.Float (t_min t));
        ("median_s", Report.Json.Float (t_median t));
        ("p90_s", Report.Json.Float (t_p90 t));
        ("speedup", Report.Json.Float (serial_median /. t_median t));
        ("gc_minor_words", Report.Json.Float t.minor_words);
        ("gc_major_words", Report.Json.Float t.major_words) ]
  in
  let print_row ~engine ~domains t =
    Printf.printf "%-8s %-8d %10.3f %10.3f %10.3f %9.2f\n" engine domains
      (t_min t) (t_median t) (t_p90 t)
      (serial_median /. t_median t)
  in
  Format.printf "%a@." Circuit.Netlist.pp_summary circuit;
  Printf.printf
    "faults: %d collapsed, patterns: %d, host cores: %d, %d repeats (+%d warmup)\n\n"
    (Array.length universe) pattern_count
    (Domain.recommended_domain_count ())
    repeats warmup;
  Printf.printf "%-8s %-8s %10s %10s %10s %9s\n" "engine" "domains" "min (s)"
    "median (s)" "p90 (s)" "speedup";
  print_row ~engine:"ppsfp" ~domains:1 serial_t;
  let rows = ref [ record ~engine:"ppsfp" ~domains:1 serial_t ] in
  List.iter
    (fun domains ->
      let result, t =
        measure ~warmup ~repeats (fun () ->
            Fsim.Par.run ~domains circuit universe patterns)
      in
      if result <> baseline then
        failwith "BENCH_fsim: Par.run diverged from Ppsfp.run";
      rows := record ~engine:"par" ~domains t :: !rows;
      print_row ~engine:"par" ~domains t)
    domain_counts;
  (* Host context makes the artifact self-explaining: a 0.78x "speedup"
     at 8 domains is expected on a 1-core container, an anomaly on a
     16-core workstation. *)
  let host =
    Report.Json.Obj
      [ ("cores", Report.Json.Int (Domain.recommended_domain_count ()));
        ("ocaml_version", Report.Json.String Sys.ocaml_version);
        ("word_size", Report.Json.Int Sys.word_size);
        ("warmup", Report.Json.Int warmup);
        ("repeats", Report.Json.Int repeats) ]
  in
  let ndetect = ndetect_bench ~warmup ~repeats circuit universe patterns in
  let analysis = analysis_bench ~smoke () in
  let testability = testability_bench ~smoke () in
  let bdd = bdd_bench ~smoke () in
  let doc =
    Report.Json.Obj
      [ ("host", host);
        ("runs", Report.Json.List (List.rev !rows));
        ("ndetect", Report.Json.List ndetect);
        ("analysis", analysis);
        ("testability", testability);
        ("bdd", bdd) ]
  in
  let oc = open_out out in
  output_string oc (Report.Json.to_string_pretty doc);
  output_char oc '\n';
  close_out oc;
  (* Self-check the artifact on disk: the ndetect block must survive
     emission, so a refactor that silently drops it fails the build. *)
  let ic = open_in out in
  let written = really_input_string ic (in_channel_length ic) in
  close_in ic;
  (match Report.Json.parse written with
  | Ok (Report.Json.Obj fields)
    when List.mem_assoc "ndetect" fields
         && List.mem_assoc "testability" fields
         && List.mem_assoc "bdd" fields -> ()
  | Ok _ ->
    failwith "BENCH_fsim: written JSON lacks the ndetect, testability or bdd block"
  | Error message -> failwith ("BENCH_fsim: written JSON unparsable: " ^ message));
  (* Append the run to the history so `diff` has a trajectory to
     compare against; entries are keyed by host context at read time. *)
  Obs.History.append ~path:history
    (Obs.History.entry ~time_unix:(Unix.gettimeofday ()) doc);
  Printf.printf "\nwrote %s (all engines bit-identical)\n" out;
  Printf.printf "appended history entry to %s\n" history

(* ------------------------------------------------------------------ *)
(* Bench-history regression gate: compare a current BENCH_fsim.json
   document against the most recent same-host baseline in the history,
   with the noise-aware thresholds of Obs.History (Time metrics need
   both a 1.5x ratio and a 2ms absolute excess; Exact metrics flag on
   any change).  Exits 1 naming every regressed block, so CI can gate
   on it; an empty or foreign-host history compares nothing and
   passes. *)

let read_doc path =
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Report.Json.parse text with
  | Ok doc -> doc
  | Error message -> failwith (Printf.sprintf "bench diff: %s: %s" path message)

let run_diff ~history ?current () =
  section
    (Printf.sprintf "Bench history diff (%s%s)" history
       (match current with Some c -> " vs " ^ c | None -> ", last two entries"));
  let entries =
    match Obs.History.load history with
    | Ok entries -> entries
    | Error message ->
      failwith (Printf.sprintf "bench diff: %s: %s" history message)
  in
  let docs = List.filter_map Obs.History.doc_of_entry entries in
  let current_doc, candidates =
    match current with
    | Some path -> (Some (read_doc path), docs)
    | None ->
      (match List.rev docs with
      | cur :: rest -> (Some cur, List.rev rest)
      | [] -> (None, []))
  in
  match current_doc with
  | None -> Printf.printf "history %s is empty; nothing to compare\n" history
  | Some current ->
    let key = Obs.History.host_key current in
    (* Latest prior entry from the same host context is the baseline:
       never compare a laptop run against a CI-container trajectory. *)
    let baseline =
      List.fold_left
        (fun acc doc ->
          if String.equal (Obs.History.host_key doc) key then Some doc else acc)
        None candidates
    in
    (match baseline with
    | None ->
      Printf.printf
        "no baseline for host [%s] among %d history entr%s; nothing to compare\n"
        key (List.length docs)
        (if List.length docs = 1 then "y" else "ies")
    | Some baseline ->
      let rows = Obs.History.compare_docs ~baseline ~current () in
      print_string (Obs.History.render rows);
      let regressed = Obs.History.regressions rows in
      if regressed <> [] then begin
        Printf.eprintf "bench diff: %d regression%s vs baseline [%s]:\n"
          (List.length regressed)
          (if List.length regressed = 1 then "" else "s")
          key;
        List.iter
          (fun r ->
            Printf.eprintf "  %s %s\n" r.Obs.History.r_block r.Obs.History.r_name)
          regressed;
        exit 1
      end
      else Printf.printf "\nno regressions vs baseline [%s]\n" key)

(* ------------------------------------------------------------------ *)
(* Traced smoke iteration: run one tiny Par grading under the tracer,
   write the Chrome trace, then parse it back and check the spans the
   acceptance criteria promise are actually there.  Wired into
   `dune runtest` via the bench-smoke alias, so a refactor that
   silently stops emitting shard spans fails the build. *)

let obs_smoke_failure = ref false

let obs_check ~what ok =
  if ok then Printf.printf "ok      %s\n" what
  else begin
    Printf.printf "FAILED  %s\n" what;
    obs_smoke_failure := true
  end

let span_names json =
  match json with
  | Report.Json.Obj fields -> (
    match List.assoc_opt "traceEvents" fields with
    | Some (Report.Json.List events) ->
      List.filter_map
        (function
          | Report.Json.Obj ev -> (
            match List.assoc_opt "name" ev with
            | Some (Report.Json.String name) -> Some name
            | _ -> None)
          | _ -> None)
        events
    | _ -> [])
  | _ -> []

let run_obs_smoke ?(out = "BENCH_trace_smoke.json")
    ?(journal = "BENCH_journal_smoke.jsonl") () =
  section (Printf.sprintf "Traced bench smoke -> %s" out);
  let circuit =
    Circuit.Generators.random_circuit ~inputs:12 ~gates:200 ~outputs:8 ~seed:7
  in
  let classes = Faults.Collapse.equivalence circuit (Faults.Universe.all circuit) in
  let universe = Faults.Collapse.representatives classes in
  let patterns =
    Tpg.Random_tpg.uniform (Stats.Rng.create ~seed:99 ()) circuit ~count:64
  in
  let traced_run () =
    Obs.Trace.reset ();
    Obs.Metrics.reset ();
    Obs.Trace.set_enabled true;
    Obs.Metrics.set_enabled true;
    Fun.protect
      ~finally:(fun () ->
        Obs.Trace.set_enabled false;
        Obs.Metrics.set_enabled false)
      (fun () ->
        ignore (Analysis.Engine.build ~learn_depth:(Some 1) circuit);
        ignore (Fsim.Par.run ~domains:2 circuit universe patterns);
        ignore (Fsim.Par.run_counts ~domains:2 ~n:2 circuit universe patterns));
    Obs.Trace.tree_shape ()
  in
  let shape1 = traced_run () in
  let trace = Obs.Trace.to_chrome_json () in
  let text = Report.Json.to_string_pretty trace in
  let oc = open_out out in
  output_string oc text;
  output_char oc '\n';
  close_out oc;
  (* Validate the bytes on disk, not the in-memory value: read back and
     re-parse so the emitter's escaping is part of the check. *)
  let ic = open_in out in
  let written = really_input_string ic (in_channel_length ic) in
  close_in ic;
  (match Report.Json.parse written with
  | Error message -> obs_check ~what:("trace parses: " ^ message) false
  | Ok parsed ->
    obs_check ~what:"trace parses as JSON" true;
    obs_check ~what:"round-trips through the emitter"
      (Report.Json.parse (Report.Json.to_string parsed) = Ok parsed);
    let names = span_names parsed in
    obs_check ~what:"traceEvents is non-empty" (names <> []);
    List.iter
      (fun required ->
        obs_check
          ~what:(Printf.sprintf "span %S present" required)
          (List.mem required names))
      [ "fsim.par"; "fsim.par.prepare"; "fsim.par.shard[0]"; "fsim.par.shard[1]";
        "fsim.ndetect.par"; "fsim.ndetect.par.prepare";
        "fsim.ndetect.par.shard[0]"; "fsim.ndetect.par.shard[1]";
        "analysis.build"; "analysis.dominators"; "analysis.implications";
        "analysis.prob.signal"; "analysis.prob.observability" ];
    (* Exact-analysis spans are gated on --exact: a default build must
       not carry them. *)
    List.iter
      (fun absent ->
        obs_check
          ~what:(Printf.sprintf "span %S absent without --exact" absent)
          (not (List.mem absent names)))
      [ "analysis.bdd.build"; "analysis.bdd.redundancy"; "analysis.bdd.equiv" ]);
  obs_check ~what:"metrics counted fault evaluations"
    (match Obs.Metrics.value "fsim.par.fault_evals" with
    | Some v -> v > 0.0
    | None -> false);
  obs_check ~what:"metrics counted n-detect fault evaluations"
    (match Obs.Metrics.value "fsim.ndetect.par.fault_evals" with
    | Some v -> v > 0.0
    | None -> false);
  obs_check ~what:"metrics counted signal-probability nodes"
    (match Obs.Metrics.value "analysis.prob.nodes" with
    | Some v -> v > 0.0
    | None -> false);
  obs_check ~what:"metrics counted cut reconvergent stems"
    (match Obs.Metrics.value "analysis.prob.cut_stems" with
    | Some v -> v > 0.0
    | None -> false);
  obs_check ~what:"no BDD metrics without --exact"
    (Obs.Metrics.value "analysis.bdd.nodes" = None
    && Obs.Metrics.value "analysis.bdd.budget_fallbacks" = None);
  (* Shape determinism at fixed seed: a second traced run must produce
     the identical span tree (names and nesting; timestamps ignored). *)
  let shape2 = traced_run () in
  obs_check ~what:"span tree shape is deterministic" (String.equal shape1 shape2);
  (* The mirror image of the gating check above: an exact-enabled build
     plus an equivalence check must emit every analysis.bdd.* span and
     metric. *)
  Obs.Trace.reset ();
  Obs.Metrics.reset ();
  Obs.Trace.set_enabled true;
  Obs.Metrics.set_enabled true;
  let small = Circuit.Generators.of_spec "c17" in
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.set_enabled false;
      Obs.Metrics.set_enabled false)
    (fun () ->
      ignore
        (Analysis.Engine.build ~exact_budget:Analysis.Exact.default_budget
           small);
      ignore (Bdd.Equiv.check small small));
  let exact_names = span_names (Obs.Trace.to_chrome_json ()) in
  List.iter
    (fun required ->
      obs_check
        ~what:(Printf.sprintf "span %S present with --exact" required)
        (List.mem required exact_names))
    [ "analysis.bdd.build"; "analysis.bdd.redundancy"; "analysis.bdd.equiv" ];
  obs_check ~what:"metrics counted BDD nodes with --exact"
    (match Obs.Metrics.value "analysis.bdd.nodes" with
    | Some v -> v > 0.0
    | None -> false);
  obs_check ~what:"metrics tracked BDD cache lookups with --exact"
    (match Obs.Metrics.value "analysis.bdd.cache_lookups" with
    | Some v -> v > 0.0
    | None -> false);
  obs_check ~what:"BDD budget-fallback counter present and zero"
    (Obs.Metrics.value "analysis.bdd.budget_fallbacks" = Some 0.0);
  Obs.Trace.reset ();
  Obs.Metrics.reset ();
  (* Journal smoke: the same workload under --journal semantics with
     throttling off, then hard-assert the event sequence on disk. *)
  let journaled_run () =
    Obs.Journal.attach ~path:journal;
    Obs.Journal.set_enabled true;
    Obs.Progress.configure ~interval_s:0.0 ~printer:None ();
    Obs.Progress.set_enabled true;
    Obs.Journal.run_start ~argv:Sys.argv ~seed:7 ~circuit:circuit.Circuit.Netlist.name ();
    ignore (Fsim.Par.run ~domains:2 circuit universe patterns);
    ignore (Fsim.Ppsfp.run circuit universe patterns);
    Obs.Journal.headline "faults" (Report.Json.Int (Array.length universe));
    Obs.Journal.run_end ~outcome:Obs.Journal.Finished;
    Obs.Progress.set_enabled false;
    Obs.Journal.set_enabled false;
    Obs.Journal.detach ();
    (* The comparable projection of the event stream: concurrent shards
       make rates and timestamps jitter, but labels and item counts are
       deterministic at fixed seed. *)
    match Obs.Journal.read_file journal with
    | Error _ as e -> e
    | Ok events ->
      Ok
        ( events,
          List.filter_map
            (function
              | Obs.Journal.Progress { label; task; items; total; _ } ->
                Some (label, task, items, total)
              | _ -> None)
            events )
  in
  (match journaled_run () with
  | Error message -> obs_check ~what:("journal parses: " ^ message) false
  | Ok (events, progress1) ->
    obs_check ~what:"journal parses as JSONL" true;
    let count p = List.length (List.filter p events) in
    obs_check ~what:"exactly one run_start, first"
      (count (function Obs.Journal.Run_start _ -> true | _ -> false) = 1
      && (match events with Obs.Journal.Run_start _ :: _ -> true | _ -> false));
    obs_check ~what:"exactly one run_end, last"
      (count (function Obs.Journal.Run_end _ -> true | _ -> false) = 1
      &&
      match List.rev events with
      | Obs.Journal.Run_end { outcome = Obs.Journal.Finished; _ } :: _ -> true
      | _ -> false);
    obs_check ~what:"at least one progress event" (progress1 <> []);
    obs_check ~what:"run_end carries the headline"
      (List.exists
         (function
           | Obs.Journal.Run_end { results; _ } ->
             List.assoc_opt "faults" results
             = Some (Report.Json.Int (Array.length universe))
           | _ -> false)
         events);
    (* items-done never goes backwards within a (label, task). *)
    let monotone =
      let last = Hashtbl.create 8 in
      List.for_all
        (fun (label, task, items, _) ->
          let key = (label, task) in
          let ok =
            match Hashtbl.find_opt last key with
            | Some prev -> items >= prev
            | None -> true
          in
          Hashtbl.replace last key items;
          ok)
        progress1
    in
    obs_check ~what:"progress items monotone per task" monotone;
    (* With throttling off, a single-threaded loop's (label, items)
       stream is deterministic — a second run must reproduce the serial
       engine's projection exactly.  (The Par stream is intentionally
       excluded: which intermediate counter values the shards publish
       depends on interleaving; only its final count is exact.) *)
    (match journaled_run () with
    | Error message -> obs_check ~what:("journal re-parses: " ^ message) false
    | Ok (_, progress2) ->
      let serial p =
        List.filter_map
          (fun (label, _, items, total) ->
            if String.equal label "fsim.ppsfp" then Some (label, items, total)
            else None)
          p
      in
      obs_check ~what:"unthrottled serial event stream is deterministic"
        (serial progress1 = serial progress2)));
  if !obs_smoke_failure then begin
    Printf.eprintf "obs-smoke: validation failed (see above)\n";
    exit 1
  end;
  Printf.printf "\nwrote %s\n" out

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one measurement per table/figure, plus
   the substrate ablations (fault-simulation engines, simulators). *)

let micro_tests () =
  let open Bechamel in
  let run = Lazy.force pipeline_run in
  let circuit =
    Circuit.Generators.random_circuit ~inputs:24 ~gates:1200 ~outputs:24 ~seed:5
  in
  let universe = Faults.Universe.all circuit in
  let classes = Faults.Collapse.equivalence circuit universe in
  let reps = Faults.Collapse.representatives classes in
  let sample_faults = Array.sub reps 0 (min 400 (Array.length reps)) in
  let rng = Stats.Rng.create ~seed:99 () in
  let patterns = Tpg.Random_tpg.uniform rng circuit ~count:128 in
  let one_block = Logicsim.Packed.block_of_patterns circuit (Array.sub patterns 0 64) in
  let experiment_tests =
    [ Test.make ~name:"fig1-series" (Staged.stage (fun () -> Experiments.Fig1.series ()));
      Test.make ~name:"fig2-series"
        (Staged.stage (fun () -> Experiments.Fig2_3_4.series ~reject:0.01));
      Test.make ~name:"fig3-series"
        (Staged.stage (fun () -> Experiments.Fig2_3_4.series ~reject:0.005));
      Test.make ~name:"fig4-series"
        (Staged.stage (fun () -> Experiments.Fig2_3_4.series ~reject:0.001));
      Test.make ~name:"fig5-family-and-fit"
        (Staged.stage (fun () ->
             ignore (Experiments.Fig5.family ~yield_:0.07);
             Experiments.Fig5.fit_paper ()));
      Test.make ~name:"fig6-series"
        (Staged.stage (fun () -> Experiments.Fig6.error_table ()));
      Test.make ~name:"table1-rows"
        (Staged.stage (fun () -> Experiments.Table1.simulated_side run));
      Test.make ~name:"comparison-rows"
        (Staged.stage (fun () -> Experiments.Comparison.rows ()));
      Test.make ~name:"fineline-sweep"
        (Staged.stage (fun () ->
             Experiments.Fineline.sweep ~shrinks:[ 1.0; 0.8; 0.6; 0.5 ] ())) ]
  in
  let substrate_tests =
    [ Test.make ~name:"fsim-serial-400f-64p"
        (Staged.stage (fun () ->
             Fsim.Serial.run circuit sample_faults (Array.sub patterns 0 64)));
      Test.make ~name:"fsim-ppsfp-400f-64p"
        (Staged.stage (fun () ->
             Fsim.Ppsfp.run circuit sample_faults (Array.sub patterns 0 64)));
      Test.make ~name:"fsim-deductive-400f-64p"
        (Staged.stage (fun () ->
             Fsim.Deductive.run circuit sample_faults (Array.sub patterns 0 64)));
      Test.make ~name:"fsim-concurrent-400f-64p-random"
        (Staged.stage (fun () ->
             Fsim.Concurrent.run circuit sample_faults (Array.sub patterns 0 64)));
      Test.make ~name:"fsim-concurrent-400f-64p-walk"
        (let walk_rng = Stats.Rng.create ~seed:23 () in
         let walk = Tpg.Random_tpg.random_walk walk_rng circuit ~count:64 () in
         Staged.stage (fun () -> Fsim.Concurrent.run circuit sample_faults walk));
      Test.make ~name:"fsim-deductive-400f-64p-walk"
        (let walk_rng = Stats.Rng.create ~seed:23 () in
         let walk = Tpg.Random_tpg.random_walk walk_rng circuit ~count:64 () in
         Staged.stage (fun () -> Fsim.Deductive.run circuit sample_faults walk));
      Test.make ~name:"logicsim-packed-64p"
        (Staged.stage (fun () -> Logicsim.Packed.eval_block circuit one_block));
      Test.make ~name:"logicsim-ref-1p"
        (Staged.stage (fun () -> Logicsim.Refsim.eval circuit patterns.(0)));
      Test.make ~name:"podem-one-fault"
        (Staged.stage (fun () -> Tpg.Podem.generate circuit reps.(17)));
      Test.make ~name:"implication-atpg-one-fault"
        (Staged.stage (fun () -> Tpg.Implication_atpg.generate circuit reps.(17)));
      Test.make ~name:"podem-scoap-guided"
        (let scoap = Tpg.Scoap.analyze circuit in
         Staged.stage (fun () ->
             Tpg.Podem.generate ~guidance:(Tpg.Podem.Scoap_based scoap) circuit
               reps.(17)));
      Test.make ~name:"scoap-analyze"
        (Staged.stage (fun () -> Tpg.Scoap.analyze circuit));
      Test.make ~name:"collapse"
        (Staged.stage (fun () -> Faults.Collapse.equivalence circuit universe));
      Test.make ~name:"collapse-dominance"
        (Staged.stage (fun () -> Faults.Collapse.dominance circuit classes));
      Test.make ~name:"q0-exact-n32"
        (Staged.stage (fun () ->
             Quality.Escape.q0_exact ~total:10000 ~faulty:32 ~coverage:0.9));
      Test.make ~name:"required-coverage-solve"
        (Staged.stage (fun () ->
             Quality.Requirement.required_coverage ~yield_:0.07 ~n0:8.0 ~reject:0.001)) ]
  in
  Test.make_grouped ~name:"lsi" (experiment_tests @ substrate_tests)

(* Export the analytic figure series as CSV files for external plotting. *)
let run_csv directory =
  section (Printf.sprintf "CSV export to %s" directory);
  (try Unix.mkdir directory 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let save name series =
    let path = Filename.concat directory (name ^ ".csv") in
    let oc = open_out path in
    output_string oc (Report.Csv.of_series series);
    close_out oc;
    Printf.printf "wrote %s\n" path
  in
  save "fig1" (Experiments.Fig1.series ());
  save "fig2" (Experiments.Fig2_3_4.series ~reject:0.01);
  save "fig3" (Experiments.Fig2_3_4.series ~reject:0.005);
  save "fig4" (Experiments.Fig2_3_4.series ~reject:0.001);
  save "fig6" (Experiments.Fig6.series ());
  save "fig5"
    (Experiments.Fig5.family ~yield_:0.07 @ [ Experiments.Fig5.paper_points () ])

let run_micro () =
  section "Bechamel micro-benchmarks (one per experiment + substrates)";
  let open Bechamel in
  let open Toolkit in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] (micro_tests ()) in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |])
      Instance.monotonic_clock raw
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some (v :: _) -> v
        | Some [] | None -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  let rows =
    List.sort compare !rows
    |> List.map (fun (name, ns) ->
           let display =
             if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
             else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
             else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
             else Printf.sprintf "%.0f ns" ns
           in
           [ name; display ])
  in
  print_string
    (Report.Table.render
       ~aligns:[ Report.Table.Left; Right ]
       ~headers:[ "benchmark"; "time/run" ] rows)

let targets =
  [ ("fig1", run_fig1);
    ("fig2", fun () -> run_fig 2 "Fig.2" 0.01);
    ("fig3", fun () -> run_fig 3 "Fig.3" 0.005);
    ("fig4", fun () -> run_fig 4 "Fig.4" 0.001);
    ("fig5", run_fig5);
    ("fig6", run_fig6);
    ("table1", run_table1);
    ("comparison", run_comparison);
    ("fineline", run_fineline);
    ("ablation", run_ablation);
    ("signature", run_signature);
    ("stafan", run_stafan);
    ("drift", run_drift);
    ("economics", run_economics);
    ("wafer", run_wafer);
    ("par", fun () -> run_par ~smoke:false ());
    ("analyze", run_analyze);
    ("ndetect", run_ndetect);
    ("testability", fun () -> ignore (testability_bench ~smoke:false ()));
    ("bdd", fun () -> ignore (bdd_bench ~smoke:false ()));
    ("micro", run_micro) ]

(* "par", "analyze", "ndetect", "testability" and "bdd" are excluded
   from `all`: they are timing/validation runs, meaningful only when
   invoked on their own (the `par` targets embed the analyze, ndetect,
   testability and bdd sections in BENCH_fsim.json anyway). *)
let run_all () =
  List.iter
    (fun (name, f) ->
      if name <> "micro" && name <> "par" && name <> "analyze"
         && name <> "ndetect" && name <> "testability" && name <> "bdd"
      then f ())
    targets;
  run_fig234_checkpoints ();
  run_micro ()

let () =
  match Array.to_list Sys.argv with
  | [] | [ _ ] -> run_all ()
  | [ _; "csv"; directory ] -> run_csv directory
  | [ _; "par"; out ] -> run_par ~out ~smoke:false ()
  | [ _; "par-smoke" ] -> run_par ~smoke:true ()
  | [ _; "par-smoke"; out ] -> run_par ~out ~smoke:true ()
  | [ _; "par-smoke"; out; history ] -> run_par ~out ~history ~smoke:true ()
  | [ _; "obs-smoke" ] -> run_obs_smoke ()
  | [ _; "obs-smoke"; out ] -> run_obs_smoke ~out ()
  | [ _; "obs-smoke"; out; journal ] -> run_obs_smoke ~out ~journal ()
  | [ _; "diff"; history ] -> run_diff ~history ()
  | [ _; "diff"; history; current ] -> run_diff ~history ~current ()
  | _ :: args ->
    List.iter
      (fun arg ->
        match List.assoc_opt arg targets with
        | Some f -> f ()
        | None when arg = "all" -> run_all ()
        | None ->
          Printf.eprintf "unknown target %S; available: %s all\n" arg
            (String.concat " " (List.map fst targets));
          exit 1)
      args
